//! TCP endpoint configuration.

use taq_sim::SimDuration;

/// Loss-recovery variant of the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Classic Reno: fast retransmit/recovery, exits recovery on the
    /// first partial ACK (handles one loss per window well, multiple
    /// losses poorly).
    Reno,
    /// NewReno (RFC 6582): stays in recovery across partial ACKs,
    /// retransmitting one hole per RTT.
    NewReno,
    /// SACK-based recovery: the scoreboard identifies holes so multiple
    /// losses per window can be repaired without timeouts (subject to
    /// having enough dupACKs, which small windows do not provide).
    Sack,
    /// CUBIC congestion avoidance (RFC 8312, simplified) over NewReno
    /// loss recovery — the "modern stack" the paper's SPK definition
    /// references.
    Cubic,
}

/// Configuration for a TCP sender/receiver pair.
///
/// Defaults mirror the paper's ns2-style setup: 500-byte on-the-wire
/// segments (460-byte MSS + 40-byte header), initial window of 2
/// segments, no delayed ACKs, NewReno recovery, and a 200 ms minimum RTO.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size — application payload bytes per segment.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub initial_window: u32,
    /// Loss-recovery variant.
    pub variant: Variant,
    /// Duplicate-ACK threshold for fast retransmit (3 per RFC 5681).
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout (RFC 6298 §2.4: SHOULD
    /// be 1 second). Lowering this below the per-flow service interval
    /// of a fair-queued bottleneck causes chronic spurious timeouts.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout (backoff saturates
    /// here).
    pub max_rto: SimDuration,
    /// Receiver delays ACKs (off in all paper experiments, which note
    /// that delayed ACKs obscure congestion dynamics).
    pub delayed_ack: bool,
    /// Delayed-ACK flush timer, when `delayed_ack` is set.
    pub delayed_ack_timeout: SimDuration,
    /// Cap on the congestion window, in segments (0 = uncapped). The
    /// paper's model uses Wmax = 6; simulations leave this uncapped.
    pub max_window_segments: u32,
    /// Initial RTO before any RTT sample exists (RFC 6298 says 1 s).
    pub initial_rto: SimDuration,
    /// Initial timeout for an unanswered connection request (SYN), before
    /// any RTT estimate exists.
    pub syn_retry_initial: SimDuration,
    /// Cap on the SYN retry backoff.
    pub syn_retry_max: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 460,
            initial_window: 2,
            variant: Variant::NewReno,
            dupack_threshold: 3,
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            delayed_ack: false,
            delayed_ack_timeout: SimDuration::from_millis(100),
            max_window_segments: 0,
            initial_rto: SimDuration::from_secs(1),
            syn_retry_initial: SimDuration::from_secs(1),
            syn_retry_max: SimDuration::from_secs(8),
        }
    }
}

impl TcpConfig {
    /// The "modern stack" profile the paper's SPK(k) discussion cites:
    /// CUBIC with an initial window of 10 segments.
    pub fn cubic_modern() -> Self {
        TcpConfig {
            variant: Variant::Cubic,
            initial_window: 10,
            ..TcpConfig::default()
        }
    }

    /// On-the-wire size of a full segment (MSS + header).
    pub fn wire_segment(&self) -> u32 {
        self.mss + taq_sim::Packet::DEFAULT_HEADER
    }

    /// Initial congestion window in bytes.
    pub fn iw_bytes(&self) -> u64 {
        u64::from(self.initial_window) * u64::from(self.mss)
    }

    /// Window cap in bytes, or `u64::MAX` if uncapped.
    pub fn max_window_bytes(&self) -> u64 {
        if self.max_window_segments == 0 {
            u64::MAX
        } else {
            u64::from(self.max_window_segments) * u64::from(self.mss)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero MSS, zero initial window,
    /// inverted RTO bounds); these are construction bugs.
    pub fn validate(&self) {
        assert!(self.mss > 0, "mss must be positive");
        assert!(self.initial_window > 0, "initial window must be positive");
        assert!(
            self.dupack_threshold > 0,
            "dupack threshold must be positive"
        );
        assert!(self.min_rto <= self.max_rto, "min_rto > max_rto");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = TcpConfig::default();
        c.validate();
        assert_eq!(c.wire_segment(), 500, "500-byte on-the-wire packets");
        assert_eq!(c.iw_bytes(), 920);
        assert_eq!(c.variant, Variant::NewReno);
        assert!(!c.delayed_ack);
        assert_eq!(c.max_window_bytes(), u64::MAX);
    }

    #[test]
    fn window_cap_in_bytes() {
        let c = TcpConfig {
            max_window_segments: 6,
            ..TcpConfig::default()
        };
        assert_eq!(c.max_window_bytes(), 6 * 460);
    }

    #[test]
    #[should_panic(expected = "mss")]
    fn zero_mss_rejected() {
        TcpConfig {
            mss: 0,
            ..TcpConfig::default()
        }
        .validate();
    }
}
