//! The TCP receiver state machine.
//!
//! Generates cumulative acknowledgements, duplicate ACKs for out-of-order
//! arrivals, and SACK blocks (most recently received range first, as real
//! receivers do). Delayed ACKs are supported but off by default — the
//! paper disables them because they obscure congestion dynamics.

use crate::config::TcpConfig;
use crate::io::{TcpIo, TimerKind};
use taq_sim::{FlowKey, Packet, PacketBuilder, SackBlocks, SimTime, TimerId};

/// Counters exposed for experiments and tests.
#[derive(Debug, Default, Clone)]
pub struct ReceiverStats {
    /// ACK packets sent (including duplicates).
    pub acks_sent: u64,
    /// Duplicate ACKs sent.
    pub dup_acks_sent: u64,
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Duplicate/overlapping segments received.
    pub duplicate_segments: u64,
}

/// The receiving endpoint of one TCP connection.
#[derive(Debug)]
pub struct TcpReceiver {
    cfg: TcpConfig,
    /// ACK direction: this receiver -> the sender.
    ack_flow: FlowKey,
    /// Next expected sequence from the sender (0 until the SYN-ACK).
    rcv_nxt: u64,
    /// Out-of-order ranges held above `rcv_nxt`, sorted and disjoint.
    ooo: Vec<(u64, u64)>,
    /// Most recently received out-of-order range, reported first in SACK.
    latest_block: Option<(u64, u64)>,
    /// Sequence of the sender's FIN, once seen.
    fin_seq: Option<u64>,
    established: bool,
    complete_at: Option<SimTime>,
    /// Whether to include SACK blocks in ACKs.
    sack_enabled: bool,
    // Delayed-ACK state.
    ack_pending: bool,
    delack_timer: Option<TimerId>,
    /// Public statistics.
    pub stats: ReceiverStats,
}

impl TcpReceiver {
    /// Creates a receiver whose ACKs travel on `ack_flow` (oriented
    /// receiver→sender). `sack_enabled` controls SACK block generation.
    pub fn new(cfg: TcpConfig, ack_flow: FlowKey, sack_enabled: bool) -> Self {
        cfg.validate();
        TcpReceiver {
            cfg,
            ack_flow,
            rcv_nxt: 0,
            ooo: Vec::new(),
            latest_block: None,
            fin_seq: None,
            established: false,
            complete_at: None,
            sack_enabled,
            ack_pending: false,
            delack_timer: None,
            stats: ReceiverStats::default(),
        }
    }

    /// `true` once the SYN-ACK has been processed.
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// `true` once all data and the FIN have been received in order.
    pub fn is_complete(&self) -> bool {
        self.complete_at.is_some()
    }

    /// Time the transfer completed (FIN received in order).
    pub fn complete_at(&self) -> Option<SimTime> {
        self.complete_at
    }

    /// In-order application bytes delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        if self.rcv_nxt == 0 {
            return 0;
        }
        // rcv_nxt counts the SYN (1) + data + possibly the FIN (1).
        let mut delivered = self.rcv_nxt - 1;
        if let Some(fin) = self.fin_seq {
            if self.rcv_nxt > fin {
                delivered -= 1;
            }
        }
        delivered
    }

    /// Processes a packet from the sender (SYN-ACK, data, or FIN).
    pub fn on_packet(&mut self, pkt: &Packet, io: &mut dyn TcpIo) {
        if pkt.flags.syn && pkt.flags.ack {
            // SYN-ACK consumes one sequence number.
            if !self.established {
                self.established = true;
                self.rcv_nxt = pkt.seq_end();
            }
            self.send_ack(io);
            return;
        }
        if !pkt.is_data() && !pkt.flags.fin {
            return; // Pure ACKs from the sender carry nothing for us.
        }
        self.stats.segments_received += 1;
        if pkt.flags.fin {
            self.fin_seq = Some(pkt.seq + u64::from(pkt.payload_len));
        }
        let start = pkt.seq;
        let end = pkt.seq_end();
        if end <= self.rcv_nxt {
            // Entirely old: immediate duplicate ACK so the sender can
            // detect the spurious retransmission.
            self.stats.duplicate_segments += 1;
            self.send_ack_now(io);
            return;
        }
        if start <= self.rcv_nxt {
            // In-order (possibly overlapping) delivery.
            self.rcv_nxt = end;
            self.absorb_ooo();
            self.maybe_complete(io);
            // Out-of-order data queued means the sender is recovering:
            // ack immediately. Otherwise honour delayed-ACK policy.
            if !self.ooo.is_empty() || !self.cfg.delayed_ack || self.is_complete() {
                self.send_ack_now(io);
            } else {
                self.delayed_ack(io);
            }
        } else {
            // Out of order: hole below. Record and duplicate-ACK.
            self.insert_ooo(start, end);
            self.latest_block = Some(self.containing_block(start));
            self.send_ack_now(io);
        }
    }

    /// Handles the delayed-ACK timer.
    pub fn on_timer(&mut self, kind: TimerKind, io: &mut dyn TcpIo) {
        if kind == TimerKind::DelayedAck && self.ack_pending {
            self.delack_timer = None;
            self.send_ack_now(io);
        }
    }

    // ----- internals -------------------------------------------------

    fn maybe_complete(&mut self, io: &mut dyn TcpIo) {
        if self.complete_at.is_none() {
            if let Some(fin) = self.fin_seq {
                if self.rcv_nxt > fin {
                    self.complete_at = Some(io.now());
                }
            }
        }
    }

    fn absorb_ooo(&mut self) {
        while let Some(&(s, e)) = self.ooo.first() {
            if s > self.rcv_nxt {
                break;
            }
            self.rcv_nxt = self.rcv_nxt.max(e);
            self.ooo.remove(0);
        }
        if self.ooo.is_empty() {
            self.latest_block = None;
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        if self.ooo.iter().any(|&(s, e)| s <= start && end <= e) {
            self.stats.duplicate_segments += 1;
            return;
        }
        self.ooo.push((start, end));
        self.ooo.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ooo.len());
        for &(s, e) in &self.ooo {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ooo = merged;
    }

    /// The merged out-of-order block containing `seq`.
    fn containing_block(&self, seq: u64) -> (u64, u64) {
        *self
            .ooo
            .iter()
            .find(|&&(s, e)| s <= seq && seq < e)
            .expect("just inserted")
    }

    fn sack_blocks(&self) -> SackBlocks {
        if !self.sack_enabled || self.ooo.is_empty() {
            return SackBlocks::EMPTY;
        }
        let mut blocks: Vec<(u64, u64)> = Vec::with_capacity(3);
        if let Some(latest) = self.latest_block {
            blocks.push(latest);
        }
        for &b in self.ooo.iter().rev() {
            if blocks.len() >= 3 {
                break;
            }
            if !blocks.contains(&b) {
                blocks.push(b);
            }
        }
        SackBlocks::from_slice(&blocks)
    }

    fn delayed_ack(&mut self, io: &mut dyn TcpIo) {
        if self.ack_pending {
            // Second in-order segment: ack now (RFC 1122's "at least
            // every second segment").
            self.send_ack_now(io);
        } else {
            self.ack_pending = true;
            if let Some(t) = self.delack_timer.take() {
                io.cancel_timer(t);
            }
            self.delack_timer =
                Some(io.set_timer(self.cfg.delayed_ack_timeout, TimerKind::DelayedAck));
        }
    }

    fn send_ack_now(&mut self, io: &mut dyn TcpIo) {
        if let Some(t) = self.delack_timer.take() {
            io.cancel_timer(t);
        }
        self.ack_pending = false;
        self.send_ack(io);
    }

    fn send_ack(&mut self, io: &mut dyn TcpIo) {
        self.stats.acks_sent += 1;
        if !self.ooo.is_empty() {
            self.stats.dup_acks_sent += 1;
        }
        let pkt = PacketBuilder::new(self.ack_flow)
            .seq(1) // The client's SYN consumed sequence 0.
            .ack(self.rcv_nxt)
            .sack(self.sack_blocks())
            .build();
        io.emit(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MockIo;
    use taq_sim::{NodeId, SimDuration, TcpFlags};

    fn ack_flow() -> FlowKey {
        FlowKey {
            src: NodeId(2),
            src_port: 5000,
            dst: NodeId(1),
            dst_port: 80,
        }
    }

    fn data_flow() -> FlowKey {
        ack_flow().reversed()
    }

    fn recv(sack: bool) -> (TcpReceiver, MockIo) {
        let mut r = TcpReceiver::new(TcpConfig::default(), ack_flow(), sack);
        let mut io = MockIo::new();
        let synack = PacketBuilder::new(data_flow())
            .seq(0)
            .ack(1)
            .flags(TcpFlags::SYN_ACK)
            .build();
        r.on_packet(&synack, &mut io);
        assert!(r.is_established());
        let acks = io.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1);
        (r, io)
    }

    fn data(seq: u64, len: u32) -> Packet {
        PacketBuilder::new(data_flow())
            .seq(seq)
            .ack(1)
            .payload(len)
            .build()
    }

    fn fin(seq: u64) -> Packet {
        PacketBuilder::new(data_flow())
            .seq(seq)
            .ack(1)
            .flags(TcpFlags::FIN_ACK)
            .build()
    }

    #[test]
    fn in_order_data_advances_cumulative_ack() {
        let (mut r, mut io) = recv(false);
        r.on_packet(&data(1, 460), &mut io);
        assert_eq!(io.take_sent()[0].ack, 461);
        r.on_packet(&data(461, 460), &mut io);
        assert_eq!(io.take_sent()[0].ack, 921);
        assert_eq!(r.delivered_bytes(), 920);
    }

    #[test]
    fn out_of_order_generates_dup_acks() {
        let (mut r, mut io) = recv(false);
        r.on_packet(&data(1, 460), &mut io);
        io.take_sent();
        // Segment 461 lost; 921 and 1381 arrive.
        r.on_packet(&data(921, 460), &mut io);
        r.on_packet(&data(1381, 460), &mut io);
        let acks = io.take_sent();
        assert_eq!(acks.len(), 2);
        assert!(acks.iter().all(|a| a.ack == 461), "dup acks at the hole");
        assert_eq!(r.stats.dup_acks_sent, 2);
        // The hole fills: cumulative ACK jumps past everything buffered.
        r.on_packet(&data(461, 460), &mut io);
        assert_eq!(io.take_sent()[0].ack, 1841);
        assert_eq!(r.delivered_bytes(), 4 * 460);
    }

    #[test]
    fn sack_blocks_report_most_recent_first() {
        let (mut r, mut io) = recv(true);
        r.on_packet(&data(1, 460), &mut io);
        io.take_sent();
        // Two separate holes.
        r.on_packet(&data(921, 460), &mut io);
        let a1 = io.take_sent();
        assert_eq!(a1[0].sack.as_slice(), &[(921, 1381)]);
        r.on_packet(&data(1841, 460), &mut io);
        let a2 = io.take_sent();
        assert_eq!(
            a2[0].sack.as_slice()[0],
            (1841, 2301),
            "most recent block first"
        );
        assert!(a2[0].sack.as_slice().contains(&(921, 1381)));
    }

    #[test]
    fn duplicate_segment_reacked_immediately() {
        let (mut r, mut io) = recv(false);
        r.on_packet(&data(1, 460), &mut io);
        io.take_sent();
        r.on_packet(&data(1, 460), &mut io);
        let acks = io.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 461);
        assert_eq!(r.stats.duplicate_segments, 1);
    }

    #[test]
    fn fin_completes_transfer() {
        let (mut r, mut io) = recv(false);
        r.on_packet(&data(1, 100), &mut io);
        io.take_sent();
        assert!(!r.is_complete());
        r.on_packet(&fin(101), &mut io);
        assert!(r.is_complete());
        assert_eq!(r.delivered_bytes(), 100);
        let acks = io.take_sent();
        assert_eq!(acks[0].ack, 102, "FIN consumed one sequence number");
    }

    #[test]
    fn fin_before_hole_does_not_complete() {
        let (mut r, mut io) = recv(false);
        r.on_packet(&data(1, 100), &mut io);
        // Data 101..201 lost, FIN at 201 arrives out of order.
        r.on_packet(&fin(201), &mut io);
        assert!(!r.is_complete(), "hole before FIN");
        r.on_packet(&data(101, 100), &mut io);
        assert!(r.is_complete());
    }

    #[test]
    fn delayed_ack_coalesces_and_times_out() {
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut r = TcpReceiver::new(cfg, ack_flow(), false);
        let mut io = MockIo::new();
        let synack = PacketBuilder::new(data_flow())
            .seq(0)
            .ack(1)
            .flags(TcpFlags::SYN_ACK)
            .build();
        r.on_packet(&synack, &mut io);
        io.take_sent();
        // First in-order segment: ACK deferred.
        r.on_packet(&data(1, 460), &mut io);
        assert!(io.take_sent().is_empty());
        // Second segment: ACK released.
        r.on_packet(&data(461, 460), &mut io);
        assert_eq!(io.take_sent()[0].ack, 921);
        // A lone segment is eventually acked by the timer.
        r.on_packet(&data(921, 460), &mut io);
        assert!(io.take_sent().is_empty());
        assert!(io.fire_timer(TimerKind::DelayedAck).is_some());
        r.on_timer(TimerKind::DelayedAck, &mut io);
        assert_eq!(io.take_sent()[0].ack, 1381);
    }

    #[test]
    fn retransmitted_syn_ack_is_reacked() {
        let (mut r, mut io) = recv(false);
        let synack = PacketBuilder::new(data_flow())
            .seq(0)
            .ack(1)
            .flags(TcpFlags::SYN_ACK)
            .build();
        r.on_packet(&synack, &mut io);
        let acks = io.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1, "rcv_nxt not double-advanced");
    }

    #[test]
    fn overlapping_ooo_ranges_merge() {
        let (mut r, mut io) = recv(true);
        r.on_packet(&data(461, 460), &mut io);
        r.on_packet(&data(921, 460), &mut io);
        let acks = io.take_sent();
        let last = acks.last().unwrap();
        assert_eq!(last.sack.as_slice()[0], (461, 1381), "adjacent merge");
        // Filling the hole delivers everything.
        r.on_packet(&data(1, 460), &mut io);
        assert_eq!(io.take_sent()[0].ack, 1381);
    }

    #[test]
    fn delayed_ack_interrupted_by_ooo() {
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut r = TcpReceiver::new(cfg, ack_flow(), false);
        let mut io = MockIo::new();
        let synack = PacketBuilder::new(data_flow())
            .seq(0)
            .ack(1)
            .flags(TcpFlags::SYN_ACK)
            .build();
        r.on_packet(&synack, &mut io);
        io.take_sent();
        r.on_packet(&data(1, 460), &mut io);
        assert!(io.take_sent().is_empty(), "first segment deferred");
        // Out-of-order arrival must force an immediate dup ACK.
        r.on_packet(&data(921, 460), &mut io);
        let acks = io.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 461);
        io.now += SimDuration::from_secs(1);
    }
}
