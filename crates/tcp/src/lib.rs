//! # taq-tcp — TCP endpoints for the TAQ reproduction
//!
//! A from-scratch TCP implementation with exactly the mechanisms the
//! paper's analysis depends on:
//!
//! - slow start and congestion avoidance over byte-based windows,
//! - duplicate-ACK fast retransmit (3 dupACKs, hence impossible below
//!   4 segments in flight — the small-packet-regime breakdown),
//! - Reno, NewReno (RFC 6582) and SACK-scoreboard loss recovery,
//! - RFC 6298 RTO with exponential backoff that collapses only on a
//!   fresh RTT sample (Karn's algorithm), producing the repetitive
//!   timeouts and geometric silences the paper models,
//! - optional delayed ACKs (off by default, as in the paper), and
//! - host agents ([`ServerHost`], [`ClientHost`]) that model
//!   download-centric web traffic: the client's SYN carries the object
//!   size (standing in for the GET), the server streams the object, and
//!   clients keep bounded pools of parallel connections with SYN retry
//!   on rejection — the substrate for the paper's admission-control
//!   experiments.
//!
//! The state machines ([`TcpSender`], [`TcpReceiver`]) are pure: they
//! talk to the world only through [`TcpIo`], so unit tests drive them
//! packet-by-packet with [`MockIo`], the simulator drives them through
//! host agents, and the real-time testbed reuses them unchanged.

mod config;
mod cubic;
mod host;
mod io;
mod receiver;
mod rto;
mod sender;

pub use config::{TcpConfig, Variant};
pub use cubic::CubicState;
pub use host::{new_flow_log, ClientHost, FlowLog, FlowRecord, Request, ServerHost, SharedFlowLog};
pub use io::{MockIo, TcpIo, TimerKind};
pub use receiver::{ReceiverStats, TcpReceiver};
pub use rto::RttEstimator;
pub use sender::{SenderState, SenderStats, TcpSender};
