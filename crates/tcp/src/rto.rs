//! Round-trip time estimation and retransmission timeout computation,
//! following RFC 6298.
//!
//! The estimator keeps the smoothed RTT and its variance; the sender
//! layers exponential backoff on top (see
//! [`crate::TcpSender`]), doubling the timeout on each consecutive
//! timeout and collapsing back when a fresh RTT sample arrives — the
//! "timer collapse on new measurement" behaviour the paper's Markov
//! model depends on.

use taq_sim::SimDuration;

/// RFC 6298 smoothed RTT estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamps and pre-sample
    /// default.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration, initial_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            initial_rto,
        }
    }

    /// Feeds one RTT sample (seconds). Retransmitted segments must not be
    /// sampled (Karn's algorithm) — that is the caller's responsibility.
    pub fn on_sample(&mut self, rtt_secs: f64) {
        debug_assert!(rtt_secs >= 0.0);
        match self.srtt {
            None => {
                self.srtt = Some(rtt_secs);
                self.rttvar = rtt_secs / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 1.0 / 8.0;
                const BETA: f64 = 1.0 / 4.0;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - rtt_secs).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * rtt_secs);
            }
        }
    }

    /// The current base RTO (before backoff), clamped to the configured
    /// bounds.
    pub fn rto(&self) -> SimDuration {
        let Some(srtt) = self.srtt else {
            return self.initial_rto;
        };
        let raw = srtt + (4.0 * self.rttvar).max(0.001);
        SimDuration::from_secs_f64(raw)
            .max(self.min_rto)
            .min(self.max_rto)
    }

    /// RTO after `backoff` consecutive timeouts (doubling, saturating at
    /// the maximum).
    pub fn backed_off_rto(&self, backoff: u32) -> SimDuration {
        let base = self.rto();
        let factor = 1u64 << backoff.min(16);
        (base * factor).min(self.max_rto)
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// `true` once a sample has been incorporated.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert!(!e.has_sample());
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.on_sample(0.4);
        assert_eq!(e.srtt(), Some(0.4));
        // rto = srtt + 4*rttvar = 0.4 + 4*0.2 = 1.2 s.
        assert_eq!(e.rto(), SimDuration::from_secs_f64(1.2));
    }

    #[test]
    fn steady_samples_converge_to_srtt_plus_small_var() {
        let mut e = est();
        for _ in 0..200 {
            e.on_sample(0.4);
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt - 0.4).abs() < 1e-6);
        // Variance decays toward zero, so RTO approaches the clamp or
        // srtt itself.
        let rto = e.rto().as_secs_f64();
        assert!((0.4..0.45).contains(&rto), "rto = {rto}");
    }

    #[test]
    fn min_rto_clamp_applies() {
        let mut e = est();
        for _ in 0..200 {
            e.on_sample(0.01); // 10 ms RTT
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = est();
        e.on_sample(0.4);
        let base = e.rto();
        assert_eq!(e.backed_off_rto(0), base);
        assert_eq!(e.backed_off_rto(1), base * 2);
        assert_eq!(e.backed_off_rto(2), base * 4);
        assert_eq!(e.backed_off_rto(30), SimDuration::from_secs(60));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = est();
        e.on_sample(0.4);
        for _ in 0..50 {
            e.on_sample(0.2);
            e.on_sample(0.6);
        }
        // High jitter keeps the RTO well above srtt.
        assert!(e.rto().as_secs_f64() > 0.8, "rto = {}", e.rto());
    }
}
