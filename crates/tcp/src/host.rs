//! Host agents: the glue between TCP state machines and the simulator.
//!
//! A [`ServerHost`] listens on a port and serves one [`TcpSender`] per
//! incoming connection, with the object size taken from the SYN's `meta`
//! field (standing in for an HTTP GET). A [`ClientHost`] models one user:
//! it holds a queue of requested objects and keeps up to `max_parallel`
//! connections open at once — exactly the "web session pool" behaviour
//! the paper studies (browsers opening ~4 connections and requesting
//! objects as soon as possible). SYNs that get no answer are retried
//! with exponential backoff, which is also how clients behave under
//! TAQ's admission control (rejected SYNs are retried until admitted,
//! with the waiting time charged to the download).
//!
//! Both hosts record [`FlowRecord`]s into a shared [`FlowLog`] the
//! experiment harness reads after the run.

use crate::config::TcpConfig;
use crate::io::{TcpIo, TimerKind};
use crate::receiver::TcpReceiver;
use crate::sender::TcpSender;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use taq_sim::{
    Agent, Ctx, FlowKey, NodeId, Packet, PacketBuilder, SimDuration, SimTime, TcpFlags, TimerId,
};

/// Completion record for one requested object.
///
/// `PartialEq` so determinism tests can compare whole record sets
/// byte-for-byte between serial and sweep-pool runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Which client host downloaded it.
    pub client: NodeId,
    /// Client-side port of the connection that carried it.
    pub client_port: u16,
    /// Caller-assigned tag (e.g. workload object id).
    pub tag: u64,
    /// Requested object size in bytes.
    pub bytes: u64,
    /// When the request entered the client's queue.
    pub queued_at: SimTime,
    /// When the first SYN for it left the client.
    pub first_syn_at: SimTime,
    /// When the connection was established (SYN-ACK received).
    pub established_at: Option<SimTime>,
    /// When the last byte (and FIN) arrived; `None` if unfinished at the
    /// end of the run.
    pub completed_at: Option<SimTime>,
    /// Number of SYN retransmissions before establishment.
    pub syn_retries: u32,
}

impl FlowRecord {
    /// Download time as the paper measures it for admission-control
    /// experiments: queue entry (which equals first attempt for
    /// non-backlogged clients) to completion, *including* any admission
    /// wait.
    pub fn download_time(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|c| c.saturating_since(self.queued_at))
    }
}

/// Shared log of flow records, filled during a run.
#[derive(Debug, Default)]
pub struct FlowLog {
    /// Completed and in-progress records (in-progress have
    /// `completed_at = None` and are pushed at the end of a run via
    /// [`ClientHost::flush_incomplete`]).
    pub records: Vec<FlowRecord>,
}

impl FlowLog {
    /// Sorts the records into canonical content order (every field
    /// participates in the key). In a serial run each host appends in
    /// global completion order and the sort is a no-op permutation of
    /// ties; in a sharded run hosts on different threads interleave
    /// their appends nondeterministically, and this sort restores the
    /// unique order the determinism contract compares — records
    /// themselves are identical either way, only their arrangement in
    /// the vector differs.
    pub fn sort_canonical(&mut self) {
        self.records.sort_by_key(|r| {
            (
                r.completed_at,
                r.queued_at,
                r.first_syn_at,
                r.client,
                r.client_port,
                r.tag,
                r.bytes,
                r.established_at,
                r.syn_retries,
            )
        });
    }
}

/// Shared handle to a [`FlowLog`]: every client host in a scenario
/// appends to the same log, preserving global completion order, and the
/// harness keeps a clone to read afterwards. `Arc<Mutex<…>>` (not
/// `Rc<RefCell<…>>`) so hosts — and with them a whole populated
/// simulator — are `Send`; each run is still single-threaded, so the
/// lock is uncontended.
pub type SharedFlowLog = Arc<Mutex<FlowLog>>;

/// Creates an empty shared flow log.
pub fn new_flow_log() -> SharedFlowLog {
    Arc::new(Mutex::new(FlowLog::default()))
}

/// Application-protocol encoding carried in [`Packet::meta`]
/// (`taq_sim::Packet::meta`): the low 62 bits are a byte count; the
/// PERSIST bit marks a connection as persistent (HTTP/1.1 keep-alive);
/// the CLOSE sentinel asks the server to finish a persistent
/// connection.
pub mod wire_meta {
    /// Marks a SYN (or follow-up request) as belonging to a persistent
    /// connection.
    pub const PERSIST: u64 = 1 << 63;
    /// Pure-ACK request asking the server to send a FIN.
    pub const CLOSE: u64 = 1 << 62;
    /// Extracts the byte count.
    pub const fn bytes(meta: u64) -> u64 {
        meta & !(PERSIST | CLOSE)
    }
}

// ---------------------------------------------------------------------
// Timer-token encoding shared by both hosts: token = slot * 8 + kind.
// ---------------------------------------------------------------------

fn encode_token(slot: usize, kind: TimerKind) -> u64 {
    (slot as u64) * 8 + kind.code()
}

fn decode_token(token: u64) -> (usize, Option<TimerKind>) {
    ((token / 8) as usize, TimerKind::from_code(token % 8))
}

/// Adapter giving TCP state machines the [`TcpIo`] view of a simulator
/// [`Ctx`], with timer tokens scoped to one connection slot.
struct HostIo<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    slot: usize,
}

impl TcpIo for HostIo<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn emit(&mut self, pkt: Packet) {
        let dst = pkt.flow.dst;
        self.ctx.send(dst, pkt);
    }

    fn set_timer(&mut self, delay: SimDuration, kind: TimerKind) -> TimerId {
        self.ctx.set_timer(delay, encode_token(self.slot, kind))
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.ctx.cancel_timer(id);
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct ServerConn {
    sender: TcpSender,
    peer: (NodeId, u16),
}

/// A server host: accepts connections on `listen_port` and serves the
/// number of bytes named in each SYN's `meta` field.
pub struct ServerHost {
    cfg: TcpConfig,
    listen_port: u16,
    conns: Vec<Option<ServerConn>>,
    by_peer: HashMap<(NodeId, u16), usize>,
    free: Vec<usize>,
    /// Served when a SYN carries `meta == 0`.
    pub default_object: u64,
    /// Total connections accepted (for tests/metrics).
    pub accepted: u64,
}

impl ServerHost {
    /// Creates a server listening on `listen_port`.
    pub fn new(cfg: TcpConfig, listen_port: u16) -> Self {
        ServerHost {
            cfg,
            listen_port,
            conns: Vec::new(),
            by_peer: HashMap::new(),
            free: Vec::new(),
            default_object: 0,
            accepted: 0,
        }
    }

    fn alloc_slot(&mut self, conn: ServerConn) -> usize {
        if let Some(slot) = self.free.pop() {
            self.conns[slot] = Some(conn);
            slot
        } else {
            self.conns.push(Some(conn));
            self.conns.len() - 1
        }
    }

    fn release_if_closed(&mut self, slot: usize) {
        let closed = self.conns[slot]
            .as_ref()
            .is_some_and(|c| c.sender.is_closed());
        if closed {
            let conn = self.conns[slot].take().expect("checked above");
            self.by_peer.remove(&conn.peer);
            self.free.push(slot);
        }
    }

    /// Number of live (not yet closed) connections.
    pub fn live_connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Diagnostic snapshot of every live sender's state.
    pub fn debug_states(&self) -> Vec<String> {
        self.conns
            .iter()
            .flatten()
            .map(|c| format!("{:?}: {}", c.peer, c.sender.debug_state()))
            .collect()
    }

    /// Aggregated sender statistics across live connections.
    pub fn aggregate_stats(&self) -> crate::sender::SenderStats {
        let mut agg = crate::sender::SenderStats::default();
        for c in self.conns.iter().flatten() {
            let s = &c.sender.stats;
            agg.segments_sent += s.segments_sent;
            agg.retransmits += s.retransmits;
            agg.timeouts += s.timeouts;
            agg.fast_retransmits += s.fast_retransmits;
            agg.max_backoff = agg.max_backoff.max(s.max_backoff);
        }
        agg
    }
}

impl Agent for ServerHost {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.flow.dst_port != self.listen_port {
            return;
        }
        let peer = (pkt.flow.src, pkt.flow.src_port);
        if pkt.flags.syn && !pkt.flags.ack {
            let slot = match self.by_peer.get(&peer) {
                Some(&slot) => slot,
                None => {
                    let object = if wire_meta::bytes(pkt.meta) == 0 {
                        self.default_object
                    } else {
                        wire_meta::bytes(pkt.meta)
                    };
                    let mut sender = TcpSender::new(self.cfg.clone(), pkt.flow.reversed(), object);
                    if pkt.meta & wire_meta::PERSIST != 0 {
                        sender = sender.persistent();
                    }
                    let slot = self.alloc_slot(ServerConn { sender, peer });
                    self.by_peer.insert(peer, slot);
                    self.accepted += 1;
                    slot
                }
            };
            let mut io = HostIo { ctx, slot };
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.sender.on_syn(&pkt, &mut io);
            }
            return;
        }
        let Some(&slot) = self.by_peer.get(&peer) else {
            return; // ACK for a connection we already closed.
        };
        let mut io = HostIo { ctx, slot };
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.sender.on_packet(&pkt, &mut io);
            // Pipelined application requests ride on ACK packets.
            if pkt.meta & wire_meta::CLOSE != 0 {
                conn.sender.app_close(&mut io);
            } else if pkt.meta & wire_meta::PERSIST != 0 && wire_meta::bytes(pkt.meta) > 0 {
                conn.sender.send_more(wire_meta::bytes(pkt.meta), &mut io);
            }
        }
        self.release_if_closed(slot);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let (slot, Some(kind)) = decode_token(token) else {
            return;
        };
        if slot >= self.conns.len() {
            return;
        }
        let mut io = HostIo { ctx, slot };
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.sender.on_timer(kind, &mut io);
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// One object the client should fetch.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-assigned tag (propagated into the [`FlowRecord`]).
    pub tag: u64,
    /// Object size in bytes.
    pub bytes: u64,
}

enum ConnState {
    /// SYN sent, awaiting SYN-ACK.
    Connecting { retry_timer: TimerId, retries: u32 },
    /// Transfer in progress.
    Established(Box<TcpReceiver>),
}

struct ClientConn {
    local_port: u16,
    server: NodeId,
    server_port: u16,
    state: ConnState,
    record: FlowRecord,
    /// Pipelined mode: cumulative delivered-byte boundary at which the
    /// current object completes.
    boundary: u64,
    /// Pipelined mode: the connection finished its current object and
    /// awaits the next request (HTTP keep-alive idle).
    idle: bool,
}

/// A client host modelling one user with a request queue and a bounded
/// pool of parallel connections.
pub struct ClientHost {
    cfg: TcpConfig,
    server: NodeId,
    server_port: u16,
    sack: bool,
    max_parallel: usize,
    /// Requests not yet started.
    pending: std::collections::VecDeque<(SimTime, Request)>,
    /// Requests to enqueue at future times: `(when, request)`.
    scheduled: Vec<(SimTime, Request)>,
    conns: Vec<Option<ClientConn>>,
    by_port: HashMap<u16, usize>,
    free: Vec<usize>,
    next_port: u16,
    log: SharedFlowLog,
    /// Give up a connection attempt after this many SYN retries
    /// (`u32::MAX` = retry forever, the paper's admission-control client
    /// behaviour).
    pub max_syn_retries: u32,
    /// Completed objects (for quick assertions without reading the log).
    pub completed: u64,
    /// Persistent-connection mode: requests are pipelined over
    /// keep-alive connections instead of one connection per object.
    pipelined: bool,
    /// Explicit rejection notices received (middlebox admission
    /// feedback); each reschedules the connection attempt at the
    /// suggested wait instead of the exponential backoff.
    pub rejections_seen: u64,
}

impl ClientHost {
    /// Creates a client fetching from `server:server_port`, holding at
    /// most `max_parallel` simultaneous connections, logging into `log`.
    pub fn new(
        cfg: TcpConfig,
        server: NodeId,
        server_port: u16,
        max_parallel: usize,
        log: SharedFlowLog,
    ) -> Self {
        assert!(max_parallel > 0, "need at least one connection slot");
        ClientHost {
            sack: cfg.variant == crate::config::Variant::Sack,
            cfg,
            server,
            server_port,
            max_parallel,
            pending: std::collections::VecDeque::new(),
            scheduled: Vec::new(),
            conns: Vec::new(),
            by_port: HashMap::new(),
            free: Vec::new(),
            next_port: 10_000,
            log,
            max_syn_retries: u32::MAX,
            completed: 0,
            pipelined: false,
            rejections_seen: 0,
        }
    }

    /// Switches to persistent connections with pipelined requests
    /// (HTTP/1.1 keep-alive): up to `max_parallel` connections stay
    /// open, each fetching queued objects back to back. Between objects
    /// an idle connection transmits nothing — the traffic pattern TAQ's
    /// "dummy silence" state exists to recognise.
    pub fn with_pipelining(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Queues a request to be issued as soon as a connection slot frees
    /// (at simulation start, or immediately if already running).
    pub fn push_request(&mut self, req: Request) {
        self.pending.push_back((SimTime::ZERO, req));
    }

    /// Schedules a request to enter the queue at time `at` (session
    /// think-time modelling). Must be called before the run starts.
    pub fn schedule_request(&mut self, at: SimTime, req: Request) {
        self.scheduled.push((at, req));
    }

    /// Number of requests not yet completed (pending + in flight).
    pub fn outstanding(&self) -> usize {
        self.pending.len()
            + self.scheduled.len()
            + self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Pushes records for unfinished transfers into the log (call once,
    /// after the run, via `Simulator::agent_mut`).
    pub fn flush_incomplete(&mut self) {
        for conn in self.conns.iter().flatten() {
            self.log.lock().unwrap().records.push(conn.record.clone());
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        while self.by_port.len() < self.max_parallel {
            let Some((queued_at, req)) = self.pending.pop_front() else {
                break;
            };
            self.open(req, queued_at, ctx);
        }
    }

    fn open(&mut self, req: Request, queued_at: SimTime, ctx: &mut Ctx<'_>) {
        let local_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let record = FlowRecord {
            client: ctx.node(),
            client_port: local_port,
            tag: req.tag,
            bytes: req.bytes,
            queued_at: if queued_at == SimTime::ZERO {
                ctx.now()
            } else {
                queued_at
            },
            first_syn_at: ctx.now(),
            established_at: None,
            completed_at: None,
            syn_retries: 0,
        };
        let retry_timer = ctx.set_timer(
            self.cfg.syn_retry_initial,
            encode_token(slot, TimerKind::SynRetry),
        );
        self.conns[slot] = Some(ClientConn {
            local_port,
            server: self.server,
            server_port: self.server_port,
            state: ConnState::Connecting {
                retry_timer,
                retries: 0,
            },
            record,
            boundary: req.bytes,
            idle: false,
        });
        self.by_port.insert(local_port, slot);
        self.send_syn(slot, req.bytes, ctx);
    }

    fn send_syn(&mut self, slot: usize, bytes: u64, ctx: &mut Ctx<'_>) {
        let conn = self.conns[slot].as_ref().expect("slot in use");
        let syn = PacketBuilder::new(FlowKey {
            src: conn.record.client,
            src_port: conn.local_port,
            dst: conn.server,
            dst_port: conn.server_port,
        })
        .seq(0)
        .flags(TcpFlags::SYN)
        .meta(if self.pipelined {
            bytes | wire_meta::PERSIST
        } else {
            bytes
        })
        .build();
        let dst = conn.server;
        ctx.send(dst, syn);
    }

    /// Pipelined mode: after new data arrives on `slot`, complete any
    /// objects whose byte boundary has been delivered and issue the next
    /// queued request on the same connection.
    fn pump_pipeline(&mut self, slot: usize, ctx: &mut Ctx<'_>) {
        loop {
            let conn = self.conns[slot].as_mut().expect("slot live");
            let ConnState::Established(receiver) = &conn.state else {
                return;
            };
            if conn.idle || receiver.delivered_bytes() < conn.boundary {
                break;
            }
            // Complete the current object exactly once (an idle
            // connection re-fed by `feed_idle_conns` re-enters here with
            // its last record already finalized).
            if conn.record.completed_at.is_none() {
                conn.record.completed_at = Some(ctx.now());
                self.completed += 1;
                self.log.lock().unwrap().records.push(conn.record.clone());
            }
            match self.pending.pop_front() {
                Some((queued_at, req)) => {
                    let now = ctx.now();
                    conn.record = FlowRecord {
                        client: conn.record.client,
                        client_port: conn.local_port,
                        tag: req.tag,
                        bytes: req.bytes,
                        queued_at: if queued_at == SimTime::ZERO {
                            now
                        } else {
                            queued_at
                        },
                        first_syn_at: now,
                        established_at: Some(now),
                        completed_at: None,
                        syn_retries: 0,
                    };
                    conn.boundary += req.bytes;
                    let request = PacketBuilder::new(FlowKey {
                        src: conn.record.client,
                        src_port: conn.local_port,
                        dst: conn.server,
                        dst_port: conn.server_port,
                    })
                    .seq(1)
                    .ack(0)
                    .meta(req.bytes | wire_meta::PERSIST)
                    .build();
                    let dst = conn.server;
                    ctx.send(dst, request);
                }
                None => {
                    let conn = self.conns[slot].as_mut().expect("slot live");
                    conn.idle = true;
                }
            }
        }
    }

    /// Pipelined mode: hand newly queued requests to idle keep-alive
    /// connections before opening fresh ones.
    fn feed_idle_conns(&mut self, ctx: &mut Ctx<'_>) {
        for slot in 0..self.conns.len() {
            if self.pending.is_empty() {
                return;
            }
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if !conn.idle {
                continue;
            }
            conn.idle = false;
            // Re-enter the pump with a zero-length "virtual" completion:
            // the boundary is already met, so pump issues the request.
            self.pump_pipeline(slot, ctx);
        }
    }

    fn close_slot(&mut self, slot: usize, ctx: &mut Ctx<'_>) {
        if let Some(conn) = self.conns[slot].take() {
            self.by_port.remove(&conn.local_port);
            self.free.push(slot);
            self.log.lock().unwrap().records.push(conn.record);
        }
        self.start_next(ctx);
    }
}

impl Agent for ClientHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Arm timers for scheduled requests; token slots above any
        // realistic connection count mark them as schedule entries.
        let scheduled = std::mem::take(&mut self.scheduled);
        for (i, (at, req)) in scheduled.into_iter().enumerate() {
            let delay = at.saturating_since(ctx.now());
            // Schedule tokens use odd kind-code 7, unused by TimerKind.
            ctx.set_timer(delay, (i as u64) * 8 + 7);
            self.pending.push_back((at, req));
        }
        // Scheduled requests were appended to `pending` but must not
        // start before their time: move them to a holding area instead.
        let mut hold: Vec<(SimTime, Request)> = Vec::new();
        let now = ctx.now();
        self.pending.retain(|(at, req)| {
            if *at > now {
                hold.push((*at, req.clone()));
                false
            } else {
                true
            }
        });
        self.scheduled = hold;
        self.start_next(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let Some(&slot) = self.by_port.get(&pkt.flow.dst_port) else {
            return; // Late packet for a finished connection.
        };
        let conn = self.conns[slot].as_mut().expect("indexed slot live");
        if let ConnState::Connecting {
            retry_timer,
            retries,
        } = conn.state
        {
            if pkt.flags.rst {
                // Explicit admission rejection with a wait-time hint
                // (milliseconds in `meta`): retry exactly then, keeping
                // the attempt alive as the paper's feedback scheme does.
                self.rejections_seen += 1;
                ctx.cancel_timer(retry_timer);
                let wait = SimDuration::from_millis(pkt.meta.max(1));
                let timer = ctx.set_timer(wait, encode_token(slot, TimerKind::SynRetry));
                conn.state = ConnState::Connecting {
                    retry_timer: timer,
                    retries,
                };
                return;
            }
            if pkt.flags.syn && pkt.flags.ack {
                ctx.cancel_timer(retry_timer);
                conn.record.established_at = Some(ctx.now());
                let ack_flow = FlowKey {
                    src: conn.record.client,
                    src_port: conn.local_port,
                    dst: conn.server,
                    dst_port: conn.server_port,
                };
                let receiver = TcpReceiver::new(self.cfg.clone(), ack_flow, self.sack);
                conn.state = ConnState::Established(Box::new(receiver));
            } else {
                return; // Data before SYN-ACK: drop (no reassembly yet).
            }
        }
        let ConnState::Established(receiver) = &mut conn.state else {
            unreachable!("state set above");
        };
        let mut io = HostIo { ctx, slot };
        receiver.on_packet(&pkt, &mut io);
        if self.pipelined {
            self.pump_pipeline(slot, ctx);
            return;
        }
        if receiver.is_complete() {
            conn.record.completed_at = receiver.complete_at();
            self.completed += 1;
            self.close_slot(slot, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token % 8 == 7 {
            // A scheduled request's time has come.
            let now = ctx.now();
            let mut due: Vec<Request> = Vec::new();
            self.scheduled.retain(|(at, req)| {
                if *at <= now {
                    due.push(req.clone());
                    false
                } else {
                    true
                }
            });
            for req in due {
                self.pending.push_back((now, req));
            }
            if self.pipelined {
                // Prefer reusing idle keep-alive connections.
                self.feed_idle_conns(ctx);
            }
            self.start_next(ctx);
            return;
        }
        let (slot, Some(kind)) = decode_token(token) else {
            return;
        };
        if slot >= self.conns.len() || self.conns[slot].is_none() {
            return;
        }
        match kind {
            TimerKind::SynRetry => {
                let conn = self.conns[slot].as_mut().expect("checked above");
                let ConnState::Connecting { retries, .. } = conn.state else {
                    return; // Established while the timer was in flight.
                };
                if retries >= self.max_syn_retries {
                    // Abandon: log as never-completed.
                    self.close_slot(slot, ctx);
                    return;
                }
                let retries = retries + 1;
                conn.record.syn_retries = retries;
                let bytes = conn.record.bytes;
                // Exponential backoff on connection attempts.
                let delay = (self.cfg.syn_retry_initial * (1u64 << retries.min(8)))
                    .min(self.cfg.syn_retry_max);
                let timer = ctx.set_timer(delay, encode_token(slot, TimerKind::SynRetry));
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.state = ConnState::Connecting {
                        retry_timer: timer,
                        retries,
                    };
                }
                self.send_syn(slot, bytes, ctx);
            }
            TimerKind::DelayedAck => {
                let conn = self.conns[slot].as_mut().expect("checked above");
                if let ConnState::Established(receiver) = &mut conn.state {
                    let mut io = HostIo { ctx, slot };
                    receiver.on_timer(kind, &mut io);
                }
            }
            TimerKind::Rto => {} // Clients run no sender-side RTO.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_encoding_roundtrips() {
        for slot in [0usize, 1, 7, 100, 4096] {
            for kind in [TimerKind::Rto, TimerKind::DelayedAck, TimerKind::SynRetry] {
                let (s, k) = decode_token(encode_token(slot, kind));
                assert_eq!(s, slot);
                assert_eq!(k, Some(kind));
            }
        }
    }

    #[test]
    fn schedule_token_never_collides_with_timer_kinds() {
        // Kind codes are 0..=2; schedule entries use residue 7.
        for i in 0..100u64 {
            let token = i * 8 + 7;
            let (_, kind) = decode_token(token);
            assert_eq!(kind, None);
        }
    }

    #[test]
    fn flow_record_download_time() {
        let r = FlowRecord {
            client: NodeId(1),
            client_port: 10_000,
            tag: 0,
            bytes: 1000,
            queued_at: SimTime::from_secs(10),
            first_syn_at: SimTime::from_secs(10),
            established_at: Some(SimTime::from_secs(11)),
            completed_at: Some(SimTime::from_secs(14)),
            syn_retries: 2,
        };
        assert_eq!(r.download_time(), Some(SimDuration::from_secs(4)));
        let unfinished = FlowRecord {
            completed_at: None,
            ..r
        };
        assert_eq!(unfinished.download_time(), None);
    }
}
