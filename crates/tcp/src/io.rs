//! The boundary between TCP state machines and whatever drives them.
//!
//! [`TcpIo`] is everything a sender or receiver needs from its
//! environment: the clock, a way to emit packets, and timers. Host
//! agents adapt the simulator's `Ctx` to this trait; unit tests use
//! [`MockIo`] to drive the state machines packet-by-packet without a
//! simulator; the real-time testbed provides a wall-clock-backed
//! implementation. Keeping the state machines I/O-free is what lets the
//! same TCP code run in all three places.

use taq_sim::{Packet, SimDuration, SimTime, TimerId};

/// Timer kinds a TCP endpoint can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout (sender).
    Rto,
    /// Delayed ACK flush (receiver).
    DelayedAck,
    /// SYN retry (connection initiator).
    SynRetry,
}

impl TimerKind {
    /// Compact encoding used by hosts to demultiplex timer tokens.
    pub fn code(self) -> u64 {
        match self {
            TimerKind::Rto => 0,
            TimerKind::DelayedAck => 1,
            TimerKind::SynRetry => 2,
        }
    }

    /// Inverse of [`TimerKind::code`].
    pub fn from_code(code: u64) -> Option<TimerKind> {
        match code {
            0 => Some(TimerKind::Rto),
            1 => Some(TimerKind::DelayedAck),
            2 => Some(TimerKind::SynRetry),
            _ => None,
        }
    }
}

/// Environment services for a TCP state machine.
pub trait TcpIo {
    /// Current time.
    fn now(&self) -> SimTime;

    /// Transmits a packet toward `pkt.flow.dst`.
    fn emit(&mut self, pkt: Packet);

    /// Arms a timer of the given kind; at most one timer per kind is live
    /// per connection, which the state machines maintain by cancelling
    /// before re-arming.
    fn set_timer(&mut self, delay: SimDuration, kind: TimerKind) -> TimerId;

    /// Cancels a previously armed timer.
    fn cancel_timer(&mut self, id: TimerId);
}

/// A scripted [`TcpIo`] for unit tests: collects emitted packets and
/// records timer requests; the test advances time manually.
#[derive(Debug)]
pub struct MockIo {
    /// Current mock time; tests set this directly.
    pub now: SimTime,
    /// Every packet emitted, in order.
    pub sent: Vec<Packet>,
    /// Live timers as `(id, deadline, kind)`.
    pub timers: Vec<(TimerId, SimTime, TimerKind)>,
    next_timer: u32,
}

impl MockIo {
    /// Creates a mock starting at t = 0.
    pub fn new() -> Self {
        MockIo {
            now: SimTime::ZERO,
            sent: Vec::new(),
            timers: Vec::new(),
            next_timer: 0,
        }
    }

    /// Drains and returns everything sent since the last call.
    pub fn take_sent(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.sent)
    }

    /// Deadline of the earliest live timer of `kind`, if armed.
    pub fn timer_deadline(&self, kind: TimerKind) -> Option<SimTime> {
        self.timers
            .iter()
            .filter(|(_, _, k)| *k == kind)
            .map(|(_, t, _)| *t)
            .min()
    }

    /// Fires (removes and returns) the earliest timer of `kind`,
    /// advancing the clock to its deadline.
    pub fn fire_timer(&mut self, kind: TimerKind) -> Option<TimerId> {
        let pos = self
            .timers
            .iter()
            .enumerate()
            .filter(|(_, (_, _, k))| *k == kind)
            .min_by_key(|(_, (_, t, _))| *t)
            .map(|(i, _)| i)?;
        let (id, deadline, _) = self.timers.remove(pos);
        self.now = self.now.max(deadline);
        Some(id)
    }
}

impl Default for MockIo {
    fn default() -> Self {
        MockIo::new()
    }
}

impl TcpIo for MockIo {
    fn now(&self) -> SimTime {
        self.now
    }

    fn emit(&mut self, mut pkt: Packet) {
        pkt.sent_at = self.now;
        self.sent.push(pkt);
    }

    fn set_timer(&mut self, delay: SimDuration, kind: TimerKind) -> TimerId {
        // Fabricate unique ids; MockIo is never mixed with engine timers.
        let id = TimerId::synthetic(self.next_timer);
        self.next_timer += 1;
        self.timers.push((id, self.now + delay, kind));
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.timers.retain(|(t, _, _)| *t != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_sim::{FlowKey, NodeId, PacketBuilder};

    #[test]
    fn timer_kind_codes_roundtrip() {
        for k in [TimerKind::Rto, TimerKind::DelayedAck, TimerKind::SynRetry] {
            assert_eq!(TimerKind::from_code(k.code()), Some(k));
        }
        assert_eq!(TimerKind::from_code(99), None);
    }

    #[test]
    fn mock_io_tracks_timers() {
        let mut io = MockIo::new();
        let a = io.set_timer(SimDuration::from_secs(1), TimerKind::Rto);
        let _b = io.set_timer(SimDuration::from_secs(2), TimerKind::Rto);
        assert_eq!(
            io.timer_deadline(TimerKind::Rto),
            Some(SimTime::from_secs(1))
        );
        io.cancel_timer(a);
        assert_eq!(
            io.timer_deadline(TimerKind::Rto),
            Some(SimTime::from_secs(2))
        );
        let fired = io.fire_timer(TimerKind::Rto);
        assert!(fired.is_some());
        assert_eq!(io.now, SimTime::from_secs(2));
        assert!(io.fire_timer(TimerKind::Rto).is_none());
    }

    #[test]
    fn mock_io_stamps_sent_packets() {
        let mut io = MockIo::new();
        io.now = SimTime::from_secs(5);
        io.emit(
            PacketBuilder::new(FlowKey {
                src: NodeId(0),
                src_port: 1,
                dst: NodeId(1),
                dst_port: 2,
            })
            .build(),
        );
        assert_eq!(io.sent[0].sent_at, SimTime::from_secs(5));
        assert_eq!(io.take_sent().len(), 1);
        assert!(io.sent.is_empty());
    }
}
