//! The TCP sender state machine.
//!
//! Implements the data-sending half of a connection: SYN-ACK handshake
//! reply, slow start, congestion avoidance, duplicate-ACK fast
//! retransmit, Reno / NewReno (RFC 6582) / SACK-scoreboard loss recovery,
//! and the RFC 6298 retransmission timer with exponential backoff.
//!
//! Two behaviours matter specially for the paper's small-packet-regime
//! analysis and are tested explicitly here:
//!
//! 1. **No fast retransmit below 4 segments in flight** — with fewer
//!    than `dupack_threshold` packets after a loss there are not enough
//!    duplicate ACKs, so the flow must wait for a timeout (the paper's
//!    model encodes this as timeout-only recovery from states S2/S3).
//! 2. **Backoff memory** — each consecutive timeout doubles the timer;
//!    the backoff collapses to 1 only when an RTT sample is taken from
//!    newly (not re-)transmitted data, per Karn's algorithm. Repetitive
//!    timeouts therefore produce the geometrically growing silences the
//!    paper models with its `b*` states.
//!
//! The connection model mirrors download-centric HTTP: the *client*
//! sends a SYN whose `meta` field carries the object size (standing in
//! for the GET), and this sender replies SYN-ACK and streams the object.
//! Sequence numbering: the SYN-ACK consumes sequence 0, data occupies
//! `[1, 1+len)`, and the FIN consumes `1+len`.

use crate::config::{TcpConfig, Variant};
use crate::cubic::CubicState;
use crate::io::{TcpIo, TimerKind};
use crate::rto::RttEstimator;
use taq_sim::{FlowKey, Packet, PacketBuilder, SimTime, TcpFlags, TimerId};

/// Lifecycle phase of the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderState {
    /// SYN received, SYN-ACK sent, waiting for the handshake ACK.
    SynReceived,
    /// Handshake complete; transferring data.
    Established,
    /// Everything (including FIN) acknowledged.
    Closed,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Default, Clone)]
pub struct SenderStats {
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Data segments retransmitted.
    pub retransmits: u64,
    /// Retransmission timeouts experienced.
    pub timeouts: u64,
    /// Fast-retransmit episodes entered.
    pub fast_retransmits: u64,
    /// Largest consecutive-timeout backoff reached.
    pub max_backoff: u32,
}

/// The sending endpoint of one TCP connection.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Data direction: this sender -> the receiver.
    flow: FlowKey,
    state: SenderState,

    // Sequence space (bytes; 0 is the SYN-ACK, data starts at 1).
    snd_una: u64,
    snd_nxt: u64,
    /// Highest sequence ever sent; segments below it are retransmissions
    /// (after a timeout pulls `snd_nxt` back for go-back-N recovery).
    high_water: u64,
    /// One past the last data byte: `1 + object_len`.
    data_end: u64,
    /// FIN sequence once the FIN has been sent.
    fin_seq: Option<u64>,
    app_closed: bool,

    // Congestion control.
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// NewReno recovery point: recovery ends when `snd_una` passes it.
    recover: u64,

    /// CUBIC growth state (used when the variant is Cubic).
    cubic: CubicState,

    // SACK scoreboard: sorted, disjoint sacked ranges above snd_una.
    sacked: Vec<(u64, u64)>,
    /// Highest sequence retransmitted in the current SACK recovery
    /// episode, so each hole is retransmitted once per episode.
    sack_retx_mark: u64,

    // RTO machinery.
    rtt: RttEstimator,
    backoff: u32,
    rto_timer: Option<TimerId>,
    /// Outstanding RTT probe: `(seq_end, sent_at)`. Invalidated by any
    /// retransmission overlapping it (Karn's algorithm).
    rtt_probe: Option<(u64, SimTime)>,
    syn_ack_retransmitted: bool,
    syn_ack_sent_at: Option<SimTime>,

    /// Cumulative ACK value this sender places in its packets (the
    /// client's ISN + 1).
    rcv_ack: u64,

    established_at: Option<SimTime>,
    closed_at: Option<SimTime>,

    /// Public statistics.
    pub stats: SenderStats,
}

impl TcpSender {
    /// Creates a sender that will serve `object_len` bytes on `flow`
    /// (oriented sender→receiver) and close afterwards.
    pub fn new(cfg: TcpConfig, flow: FlowKey, object_len: u64) -> Self {
        cfg.validate();
        let rtt = RttEstimator::new(cfg.min_rto, cfg.max_rto, cfg.initial_rto);
        let cwnd = cfg.iw_bytes() as f64;
        let ssthresh = cfg.max_window_bytes().min(1 << 30) as f64;
        TcpSender {
            cfg,
            flow,
            state: SenderState::SynReceived,
            snd_una: 0,
            snd_nxt: 0,
            high_water: 0,
            data_end: 1 + object_len,
            fin_seq: None,
            app_closed: true,
            cwnd,
            ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            cubic: CubicState::default(),
            sacked: Vec::new(),
            sack_retx_mark: 0,
            rtt,
            backoff: 0,
            rto_timer: None,
            rtt_probe: None,
            syn_ack_retransmitted: false,
            syn_ack_sent_at: None,
            rcv_ack: 0,
            established_at: None,
            closed_at: None,
            stats: SenderStats::default(),
        }
    }

    /// Marks the connection persistent: no FIN until
    /// [`TcpSender::app_close`] is called, and
    /// [`TcpSender::send_more`] may extend the object.
    pub fn persistent(mut self) -> Self {
        self.app_closed = false;
        self
    }

    /// The data-direction flow key.
    pub fn flow(&self) -> FlowKey {
        self.flow
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SenderState {
        self.state
    }

    /// `true` once the handshake ACK has arrived.
    pub fn is_established(&self) -> bool {
        self.state == SenderState::Established
    }

    /// `true` once all data (and the FIN, if closing) is acknowledged.
    pub fn is_closed(&self) -> bool {
        self.state == SenderState::Closed
    }

    /// Time the final acknowledgement arrived.
    pub fn closed_at(&self) -> Option<SimTime> {
        self.closed_at
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current consecutive-timeout backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Current smoothed RTT estimate in seconds, if sampled.
    pub fn srtt(&self) -> Option<f64> {
        self.rtt.srtt()
    }

    /// Bytes in flight (unacknowledged).
    pub fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Lowest unacknowledged sequence number.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next sequence number to send.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// `true` while in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// One-line state summary for diagnostics.
    pub fn debug_state(&self) -> String {
        format!(
            "{:?} una={} nxt={} end={} cwnd={} ssthresh={} dup={} rec={} backoff={} fin={:?} timer={}",
            self.state,
            self.snd_una,
            self.snd_nxt,
            self.data_end,
            self.cwnd as u64,
            self.ssthresh as u64,
            self.dup_acks,
            self.in_recovery,
            self.backoff,
            self.fin_seq,
            self.rto_timer.is_some(),
        )
    }

    /// Responds to a (possibly retransmitted) SYN from the client: sends
    /// the SYN-ACK and arms the handshake timer.
    pub fn on_syn(&mut self, syn: &Packet, io: &mut dyn TcpIo) {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        self.rcv_ack = syn.seq_end();
        if self.state != SenderState::SynReceived {
            // Stale duplicate SYN after establishment; the cumulative ACK
            // we already send on every packet covers it.
            return;
        }
        if self.syn_ack_sent_at.is_some() {
            self.syn_ack_retransmitted = true;
        }
        self.syn_ack_sent_at = Some(io.now());
        self.snd_nxt = 1;
        let pkt = PacketBuilder::new(self.flow)
            .seq(0)
            .ack(self.rcv_ack)
            .flags(TcpFlags::SYN_ACK)
            .build();
        io.emit(pkt);
        self.arm_timer(io);
    }

    /// Extends a persistent connection's object by `additional` bytes
    /// (the response to a pipelined request) and tries to transmit.
    pub fn send_more(&mut self, additional: u64, io: &mut dyn TcpIo) {
        assert!(
            self.fin_seq.is_none(),
            "cannot extend after FIN has been sent"
        );
        self.data_end += additional;
        self.try_send(io);
    }

    /// Requests connection close: a FIN follows the remaining data.
    pub fn app_close(&mut self, io: &mut dyn TcpIo) {
        self.app_closed = true;
        self.try_send(io);
    }

    /// Processes an incoming ACK from the receiver.
    pub fn on_packet(&mut self, pkt: &Packet, io: &mut dyn TcpIo) {
        if !pkt.flags.ack || self.state == SenderState::Closed {
            return;
        }
        let ack = pkt.ack;
        if ack > self.high_water.max(1) {
            return; // Acks data never sent; ignore.
        }
        if self.cfg.variant == Variant::Sack && !pkt.sack.is_empty() {
            for &(s, e) in pkt.sack.as_slice() {
                self.mark_sacked(s, e);
            }
        }
        if self.state == SenderState::SynReceived {
            if ack >= 1 {
                self.establish(ack, io);
            }
            return;
        }
        if ack == self.snd_una && self.flight_size() > 0 && !pkt.is_data() {
            self.on_dup_ack(io);
            return;
        }
        if ack > self.snd_una {
            self.on_new_ack(ack, io);
        }
        // `ack < snd_una` is an old ACK: ignored.
    }

    /// Handles a fired timer.
    pub fn on_timer(&mut self, kind: TimerKind, io: &mut dyn TcpIo) {
        if kind != TimerKind::Rto || self.state == SenderState::Closed {
            return;
        }
        self.rto_timer = None;
        self.stats.timeouts += 1;
        self.backoff = (self.backoff + 1).min(16);
        self.stats.max_backoff = self.stats.max_backoff.max(self.backoff);
        // Karn: an RTO invalidates any outstanding probe.
        self.rtt_probe = None;
        let flight = self.flight_size() as f64;
        let mss = f64::from(self.cfg.mss);
        self.ssthresh = if self.cfg.variant == Variant::Cubic {
            self.cubic.on_congestion(self.cwnd / mss) * mss
        } else {
            (flight / 2.0).max(2.0 * mss)
        };
        self.cwnd = f64::from(self.cfg.mss);
        self.in_recovery = false;
        self.dup_acks = 0;
        self.sacked.clear();
        if self.state == SenderState::SynReceived {
            // Handshake never completed: resend the SYN-ACK.
            self.syn_ack_retransmitted = true;
            self.syn_ack_sent_at = Some(io.now());
            let pkt = PacketBuilder::new(self.flow)
                .seq(0)
                .ack(self.rcv_ack)
                .flags(TcpFlags::SYN_ACK)
                .build();
            io.emit(pkt);
        } else {
            // Go-back-N (as ns2 and production stacks do after an RTO):
            // pull snd_nxt back to the cumulative ACK point and resend
            // from there under slow start. Without this, each hole
            // beyond the first would cost its own backed-off timeout.
            self.snd_nxt = self.snd_una;
            self.try_send(io);
        }
        self.arm_timer(io);
    }

    // ----- internals -------------------------------------------------

    fn establish(&mut self, ack: u64, io: &mut dyn TcpIo) {
        self.state = SenderState::Established;
        self.snd_una = ack.max(1);
        self.established_at = Some(io.now());
        // The handshake provides the first RTT sample when the SYN-ACK
        // was not retransmitted.
        if let Some(sent) = self.syn_ack_sent_at {
            if !self.syn_ack_retransmitted {
                self.rtt
                    .on_sample(io.now().saturating_since(sent).as_secs_f64());
                self.backoff = 0;
            }
        }
        self.cancel_timer(io);
        self.maybe_close(io);
        self.try_send(io);
    }

    fn on_dup_ack(&mut self, io: &mut dyn TcpIo) {
        self.dup_acks += 1;
        if self.in_recovery {
            if self.dup_acks > self.cfg.dupack_threshold {
                // Window inflation: each dupACK signals a departure.
                self.cwnd += f64::from(self.cfg.mss);
                self.try_send(io);
            }
            if self.cfg.variant == Variant::Sack {
                self.try_send(io);
            }
            return;
        }
        if self.dup_acks == self.cfg.dupack_threshold {
            self.enter_fast_recovery(io);
        }
    }

    fn enter_fast_recovery(&mut self, io: &mut dyn TcpIo) {
        self.stats.fast_retransmits += 1;
        let flight = self.flight_size() as f64;
        let mss = f64::from(self.cfg.mss);
        self.ssthresh = if self.cfg.variant == Variant::Cubic {
            self.cubic.on_congestion(self.cwnd / mss) * mss
        } else {
            (flight / 2.0).max(2.0 * mss)
        };
        self.recover = self.snd_nxt;
        self.in_recovery = true;
        self.sack_retx_mark = self.snd_una;
        self.retransmit_at(self.snd_una, io);
        self.cwnd = self.ssthresh + f64::from(self.cfg.dupack_threshold * self.cfg.mss);
        self.arm_timer(io);
        self.try_send(io);
    }

    fn on_new_ack(&mut self, ack: u64, io: &mut dyn TcpIo) {
        let acked = ack - self.snd_una;
        self.snd_una = ack;
        // After a go-back-N pullback, an ACK can cover data sent before
        // the timeout that snd_nxt was pulled below; skip past it.
        self.snd_nxt = self.snd_nxt.max(ack);
        self.drop_sacked_below(ack);
        // RTT sampling + backoff collapse (timer "collapse" in the
        // paper's terms) when the probe segment is cumulatively acked.
        if let Some((probe_end, sent_at)) = self.rtt_probe {
            if ack >= probe_end {
                self.rtt
                    .on_sample(io.now().saturating_since(sent_at).as_secs_f64());
                self.backoff = 0;
                self.rtt_probe = None;
            }
        }
        if self.in_recovery {
            if ack >= self.recover {
                // Full acknowledgement: deflate and leave recovery.
                self.cwnd = self.ssthresh.max(f64::from(self.cfg.mss));
                self.in_recovery = false;
                self.dup_acks = 0;
            } else {
                match self.cfg.variant {
                    Variant::Reno => {
                        // Classic Reno deflates fully on the first
                        // partial ACK and hopes; multiple losses in a
                        // window then typically cost a timeout.
                        self.cwnd = self.ssthresh.max(f64::from(self.cfg.mss));
                        self.in_recovery = false;
                        self.dup_acks = 0;
                    }
                    Variant::NewReno | Variant::Cubic => {
                        // Partial ACK: retransmit the next hole, deflate
                        // by the amount acked, stay in recovery.
                        self.retransmit_at(self.snd_una, io);
                        self.cwnd = (self.cwnd - acked as f64 + f64::from(self.cfg.mss))
                            .max(f64::from(self.cfg.mss));
                        self.arm_timer(io);
                    }
                    Variant::Sack => {
                        self.sack_retx_mark = self.sack_retx_mark.max(self.snd_una);
                        self.arm_timer(io);
                    }
                }
                self.try_send(io);
                return;
            }
        } else {
            self.dup_acks = 0;
            // Window growth, capped.
            if self.cwnd < self.ssthresh {
                self.cwnd += f64::from(self.cfg.mss);
            } else if self.cfg.variant == Variant::Cubic {
                let mss = f64::from(self.cfg.mss);
                let segs = self.cwnd / mss;
                let rtt = self.rtt.srtt().unwrap_or(0.2);
                let new_segs = self.cubic.on_ack(segs, rtt / segs.max(1.0), rtt);
                self.cwnd = new_segs * mss;
            } else {
                self.cwnd += f64::from(self.cfg.mss) * f64::from(self.cfg.mss) / self.cwnd.max(1.0);
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_window_bytes() as f64);
        if self.flight_size() == 0 {
            self.cancel_timer(io);
        } else {
            self.arm_timer(io);
        }
        self.maybe_close(io);
        self.try_send(io);
    }

    fn maybe_close(&mut self, io: &mut dyn TcpIo) {
        if let Some(fin) = self.fin_seq {
            if self.snd_una > fin {
                self.state = SenderState::Closed;
                self.closed_at = Some(io.now());
                self.cancel_timer(io);
            }
        }
    }

    /// Effective send window in bytes.
    fn window(&self) -> u64 {
        (self.cwnd as u64).min(self.cfg.max_window_bytes())
    }

    /// Bytes counted against the window: in flight minus SACKed.
    fn pipe(&self) -> u64 {
        let sacked: u64 = self.sacked.iter().map(|(s, e)| e - s).sum();
        self.flight_size().saturating_sub(sacked)
    }

    /// Sends as much as the window allows: SACK hole repairs first (in
    /// recovery), then new data, then the FIN.
    fn try_send(&mut self, io: &mut dyn TcpIo) {
        if self.state != SenderState::Established {
            return;
        }
        // SACK recovery: repair holes the scoreboard identifies.
        if self.in_recovery && self.cfg.variant == Variant::Sack {
            while self.pipe() < self.window() {
                let Some(hole) = self.next_sack_hole() else {
                    break;
                };
                self.retransmit_at(hole, io);
                self.sack_retx_mark = hole + u64::from(self.cfg.mss);
                self.arm_timer(io);
            }
        }
        loop {
            if self.snd_nxt < self.data_end {
                let seg = u64::from(self.cfg.mss).min(self.data_end - self.snd_nxt);
                if self.pipe() + seg > self.window() {
                    break;
                }
                let seq = self.snd_nxt;
                let is_new = seq >= self.high_water;
                self.emit_data(seq, seg as u32, io);
                self.snd_nxt += seg;
                if is_new && self.rtt_probe.is_none() {
                    self.rtt_probe = Some((seq + seg, io.now()));
                }
                self.arm_timer(io);
            } else if self.app_closed
                && (self.fin_seq.is_none() || self.fin_seq == Some(self.snd_nxt))
            {
                // Second disjunct: a timeout pulled snd_nxt back and the
                // walk forward has reached the already-sent FIN again.
                if self.pipe() >= self.window() && self.pipe() > 0 {
                    break;
                }
                let seq = self.snd_nxt;
                self.fin_seq = Some(seq);
                self.snd_nxt += 1;
                let pkt = PacketBuilder::new(self.flow)
                    .seq(seq)
                    .ack(self.rcv_ack)
                    .flags(TcpFlags::FIN_ACK)
                    .build();
                io.emit(pkt);
                self.high_water = self.high_water.max(seq + 1);
                self.arm_timer(io);
                break;
            } else {
                break;
            }
        }
    }

    /// Lowest unsacked, un-retransmitted hole at or above `snd_una`.
    fn next_sack_hole(&self) -> Option<u64> {
        if self.sacked.is_empty() {
            return None;
        }
        let mut candidate = self.snd_una.max(self.sack_retx_mark);
        for &(s, e) in &self.sacked {
            if candidate < s {
                // There is un-sacked data ahead of this block.
                break;
            }
            candidate = candidate.max(e);
        }
        // Only holes below the highest sacked byte are "known lost".
        let high = self.sacked.last().map(|&(_, e)| e).unwrap_or(0);
        (candidate < high && candidate < self.snd_nxt).then_some(candidate)
    }

    fn emit_data(&mut self, seq: u64, len: u32, io: &mut dyn TcpIo) {
        self.stats.segments_sent += 1;
        if seq < self.high_water {
            self.stats.retransmits += 1;
            // Karn: retransmission overlapping the probe invalidates it.
            if let Some((probe_end, _)) = self.rtt_probe {
                if seq < probe_end {
                    self.rtt_probe = None;
                }
            }
        }
        let mut flags = TcpFlags::ACK;
        // If this segment is the FIN being retransmitted, keep the flag.
        if self.fin_seq == Some(seq) {
            flags = TcpFlags::FIN_ACK;
        }
        let pkt = PacketBuilder::new(self.flow)
            .seq(seq)
            .ack(self.rcv_ack)
            .flags(flags)
            .payload(len)
            .build();
        io.emit(pkt);
        self.high_water = self.high_water.max(seq + u64::from(len));
    }

    /// Retransmits the single segment starting at `seq` (fast retransmit
    /// and hole repair; timeout recovery uses go-back-N instead).
    fn retransmit_at(&mut self, seq: u64, io: &mut dyn TcpIo) {
        if self.fin_seq == Some(seq) {
            self.stats.retransmits += 1;
            let pkt = PacketBuilder::new(self.flow)
                .seq(seq)
                .ack(self.rcv_ack)
                .flags(TcpFlags::FIN_ACK)
                .build();
            io.emit(pkt);
            return;
        }
        let seg = u64::from(self.cfg.mss).min(self.data_end.saturating_sub(seq)) as u32;
        if seg == 0 {
            return;
        }
        self.emit_data(seq, seg, io);
    }

    fn mark_sacked(&mut self, start: u64, end: u64) {
        if end <= start || end <= self.snd_una {
            return;
        }
        let start = start.max(self.snd_una);
        self.sacked.push((start, end));
        self.sacked.sort_unstable();
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.sacked.len());
        for &(s, e) in &self.sacked {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.sacked = merged;
    }

    fn drop_sacked_below(&mut self, ack: u64) {
        self.sacked.retain_mut(|r| {
            r.0 = r.0.max(ack);
            r.0 < r.1
        });
    }

    fn arm_timer(&mut self, io: &mut dyn TcpIo) {
        if let Some(t) = self.rto_timer.take() {
            io.cancel_timer(t);
        }
        let delay = self.rtt.backed_off_rto(self.backoff);
        self.rto_timer = Some(io.set_timer(delay, TimerKind::Rto));
    }

    fn cancel_timer(&mut self, io: &mut dyn TcpIo) {
        if let Some(t) = self.rto_timer.take() {
            io.cancel_timer(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MockIo;
    use taq_sim::{NodeId, SimDuration};

    fn flow() -> FlowKey {
        FlowKey {
            src: NodeId(1),
            src_port: 80,
            dst: NodeId(2),
            dst_port: 5000,
        }
    }

    fn syn() -> Packet {
        PacketBuilder::new(flow().reversed())
            .seq(0)
            .flags(TcpFlags::SYN)
            .meta(10_000)
            .build()
    }

    fn ack_pkt(ack: u64) -> Packet {
        PacketBuilder::new(flow().reversed())
            .seq(1)
            .ack(ack)
            .build()
    }

    fn sack_pkt(ack: u64, blocks: &[(u64, u64)]) -> Packet {
        PacketBuilder::new(flow().reversed())
            .seq(1)
            .ack(ack)
            .sack(taq_sim::SackBlocks::from_slice(blocks))
            .build()
    }

    /// Sender established with `len` bytes to send; returns (sender, io)
    /// after the handshake, with the initial window's packets drained.
    fn established(len: u64, cfg: TcpConfig) -> (TcpSender, MockIo) {
        let mut s = TcpSender::new(cfg, flow(), len);
        let mut io = MockIo::new();
        s.on_syn(&syn(), &mut io);
        let sent = io.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].flags, TcpFlags::SYN_ACK);
        io.now += SimDuration::from_millis(200);
        s.on_packet(&ack_pkt(1), &mut io);
        assert!(s.is_established());
        (s, io)
    }

    #[test]
    fn handshake_then_initial_window() {
        let (mut s, mut io) = established(10_000, TcpConfig::default());
        let sent = io.take_sent();
        // IW = 2 segments.
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].seq, 1);
        assert_eq!(sent[0].payload_len, 460);
        assert_eq!(sent[1].seq, 461);
        // Handshake RTT sample taken.
        assert!((s.srtt().unwrap() - 0.2).abs() < 1e-9);
        let _ = &mut s;
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let (mut s, mut io) = established(1_000_000, TcpConfig::default());
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 2);
        // Ack both: cwnd 2 -> 4.
        for p in &w1 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        let w2 = io.take_sent();
        assert_eq!(w2.len(), 4);
        for p in &w2 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        let w3 = io.take_sent();
        assert_eq!(w3.len(), 8);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let cfg = TcpConfig::default();
        let (mut s, mut io) = established(10_000_000, cfg.clone());
        // Force CA: set ssthresh below cwnd via a timeout then regrow.
        // Simpler: drive until cwnd passes the default huge ssthresh is
        // impractical, so check the arithmetic directly.
        s.ssthresh = 2.0 * f64::from(cfg.mss);
        let before = s.cwnd;
        let w = io.take_sent();
        s.on_packet(&ack_pkt(w[0].seq_end()), &mut io);
        let growth = s.cwnd - before;
        // One ACK in CA grows cwnd by ~mss^2/cwnd < mss.
        assert!(growth > 0.0 && growth < f64::from(cfg.mss));
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let (mut s, mut io) = established(1_000_000, TcpConfig::default());
        // Grow the window so ≥4 packets are in flight.
        let w1 = io.take_sent();
        for p in &w1 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        let w2 = io.take_sent();
        assert_eq!(w2.len(), 4);
        let una = s.snd_una;
        // First segment of w2 lost: three dupACKs arrive.
        for _ in 0..3 {
            s.on_packet(&ack_pkt(una), &mut io);
        }
        let out = io.take_sent();
        assert!(
            out.iter().any(|p| p.seq == una && p.is_data()),
            "lost segment retransmitted"
        );
        assert_eq!(s.stats.fast_retransmits, 1);
        assert!(s.in_recovery);
        assert_eq!(s.stats.timeouts, 0);
    }

    #[test]
    fn two_dupacks_do_not_trigger_fast_retransmit() {
        let (mut s, mut io) = established(1_000_000, TcpConfig::default());
        let w1 = io.take_sent();
        for p in &w1 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        io.take_sent();
        let una = s.snd_una;
        for _ in 0..2 {
            s.on_packet(&ack_pkt(una), &mut io);
        }
        assert!(io.take_sent().is_empty());
        assert_eq!(s.stats.fast_retransmits, 0);
    }

    #[test]
    fn small_window_cannot_fast_retransmit_and_times_out() {
        // The paper's key small-packet-regime mechanism: with only 2
        // packets in flight, a loss cannot generate 3 dupACKs, so the
        // sender must wait for the RTO.
        let (mut s, mut io) = established(10_000, TcpConfig::default());
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 2);
        // First packet lost; the second produces a single dupACK.
        s.on_packet(&ack_pkt(1), &mut io);
        assert!(io.take_sent().is_empty(), "no fast retransmit possible");
        // The RTO eventually fires.
        assert!(io.fire_timer(TimerKind::Rto).is_some());
        s.on_timer(TimerKind::Rto, &mut io);
        let out = io.take_sent();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 1, "go-back to snd_una");
        assert_eq!(s.stats.timeouts, 1);
        assert_eq!(s.cwnd(), 460, "cwnd collapses to 1 MSS");
        assert_eq!(s.backoff(), 1);
    }

    #[test]
    fn repeated_timeouts_double_backoff_and_collapse_on_new_sample() {
        let (mut s, mut io) = established(10_000, TcpConfig::default());
        io.take_sent();
        let rto_base = s.rtt.backed_off_rto(0);
        // Three consecutive timeouts.
        for i in 1..=3u32 {
            assert!(io.fire_timer(TimerKind::Rto).is_some());
            s.on_timer(TimerKind::Rto, &mut io);
            assert_eq!(s.backoff(), i);
            io.take_sent();
        }
        // The armed timer reflects the backed-off RTO (8x base).
        let deadline = io.timer_deadline(TimerKind::Rto).unwrap();
        let delay = deadline.saturating_since(io.now);
        assert_eq!(delay, (rto_base * 8).min(SimDuration::from_secs(60)));
        // A new ACK covering fresh (post-timeout retransmission carries
        // old data, so ack the retransmitted segment: that sample is
        // Karn-suppressed) — send new data and ack it to collapse.
        s.on_packet(&ack_pkt(461), &mut io); // acks the retransmitted seg
        assert_eq!(s.backoff(), 3, "Karn: retransmitted data gives no sample");
        let fresh = io.take_sent();
        assert!(!fresh.is_empty(), "window reopens");
        // Cumulatively ack everything outstanding, including data beyond
        // the pre-timeout high-water mark (genuinely new, so sampled).
        let high = fresh.iter().map(|p| p.seq_end()).max().unwrap();
        io.now += SimDuration::from_millis(300);
        s.on_packet(&ack_pkt(high), &mut io);
        assert_eq!(s.backoff(), 0, "new RTT sample collapses the backoff");
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let (mut s, mut io) = established(1_000_000, TcpConfig::default());
        let w1 = io.take_sent();
        for p in &w1 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        let w2 = io.take_sent();
        assert_eq!(w2.len(), 4);
        let una = s.snd_una;
        // Lose segments 1 and 2 of w2; dupacks from 3 and 4 + one more.
        for _ in 0..3 {
            s.on_packet(&ack_pkt(una), &mut io);
        }
        let first_rtx = io.take_sent();
        assert!(first_rtx.iter().any(|p| p.seq == una));
        // Partial ACK: first hole repaired, second still missing.
        let second_hole = una + 460;
        s.on_packet(&ack_pkt(second_hole), &mut io);
        let out = io.take_sent();
        assert!(
            out.iter().any(|p| p.seq == second_hole && p.is_data()),
            "NewReno retransmits the next hole on a partial ACK"
        );
        assert!(s.in_recovery, "stays in recovery until full ACK");
        // Full ACK ends recovery.
        s.on_packet(&ack_pkt(s.recover), &mut io);
        assert!(!s.in_recovery);
        assert_eq!(s.stats.timeouts, 0);
    }

    #[test]
    fn reno_partial_ack_exits_recovery() {
        let cfg = TcpConfig {
            variant: Variant::Reno,
            ..TcpConfig::default()
        };
        let (mut s, mut io) = established(1_000_000, cfg);
        let w1 = io.take_sent();
        for p in &w1 {
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        io.take_sent();
        let una = s.snd_una;
        for _ in 0..3 {
            s.on_packet(&ack_pkt(una), &mut io);
        }
        io.take_sent();
        s.on_packet(&ack_pkt(una + 460), &mut io);
        assert!(!s.in_recovery, "Reno leaves recovery on partial ACK");
    }

    #[test]
    fn sack_recovery_repairs_multiple_holes() {
        let cfg = TcpConfig {
            variant: Variant::Sack,
            initial_window: 8,
            ..TcpConfig::default()
        };
        let (mut s, mut io) = established(1_000_000, cfg);
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 8);
        let una = s.snd_una;
        // Segments 0 and 2 lost; receiver SACKs {1} then {1,3} then
        // {1,3,4}...
        let seg = 460u64;
        let b1 = (una + seg, una + 2 * seg);
        let b3 = (una + 3 * seg, una + 4 * seg);
        let b4 = (una + 3 * seg, una + 5 * seg);
        s.on_packet(&sack_pkt(una, &[b1]), &mut io);
        s.on_packet(&sack_pkt(una, &[b3, b1]), &mut io);
        s.on_packet(&sack_pkt(una, &[b4, b1]), &mut io);
        let out = io.take_sent();
        let rtx: Vec<u64> = out.iter().filter(|p| p.is_data()).map(|p| p.seq).collect();
        assert!(rtx.contains(&una), "first hole repaired: {rtx:?}");
        assert!(
            rtx.contains(&(una + 2 * seg)),
            "second hole repaired without timeout: {rtx:?}"
        );
        assert_eq!(s.stats.timeouts, 0);
    }

    #[test]
    fn transfer_completes_with_fin() {
        let (mut s, mut io) = established(1_000, TcpConfig::default());
        // 1000 bytes = 3 segments (460+460+80); IW=2 so two now.
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 2);
        s.on_packet(&ack_pkt(w1[1].seq_end()), &mut io);
        let w2 = io.take_sent();
        // Remaining 80 bytes + FIN.
        assert_eq!(w2.len(), 2);
        assert_eq!(w2[0].payload_len, 80);
        assert!(w2[1].flags.fin);
        let fin_end = w2[1].seq_end();
        s.on_packet(&ack_pkt(fin_end), &mut io);
        assert!(s.is_closed());
        assert!(s.closed_at().is_some());
        assert!(io.timers.is_empty(), "all timers cancelled at close");
    }

    #[test]
    fn zero_byte_object_sends_only_fin() {
        let (mut s, mut io) = established(0, TcpConfig::default());
        let out = io.take_sent();
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.fin);
        s.on_packet(&ack_pkt(out[0].seq_end()), &mut io);
        assert!(s.is_closed());
    }

    #[test]
    fn persistent_connection_extends() {
        let mut s = TcpSender::new(TcpConfig::default(), flow(), 460).persistent();
        let mut io = MockIo::new();
        s.on_syn(&syn(), &mut io);
        io.take_sent();
        s.on_packet(&ack_pkt(1), &mut io);
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 1, "no FIN while persistent");
        s.on_packet(&ack_pkt(w1[0].seq_end()), &mut io);
        assert!(io.take_sent().is_empty());
        assert!(!s.is_closed());
        // Pipelined request arrives: extend and send.
        s.send_more(460, &mut io);
        let w2 = io.take_sent();
        assert_eq!(w2.len(), 1);
        assert_eq!(w2[0].payload_len, 460);
        s.on_packet(&ack_pkt(w2[0].seq_end()), &mut io);
        s.app_close(&mut io);
        let fin = io.take_sent();
        assert!(fin[0].flags.fin);
        s.on_packet(&ack_pkt(fin[0].seq_end()), &mut io);
        assert!(s.is_closed());
    }

    #[test]
    fn syn_ack_retransmitted_on_handshake_timeout() {
        let mut s = TcpSender::new(TcpConfig::default(), flow(), 100);
        let mut io = MockIo::new();
        s.on_syn(&syn(), &mut io);
        io.take_sent();
        assert!(io.fire_timer(TimerKind::Rto).is_some());
        s.on_timer(TimerKind::Rto, &mut io);
        let out = io.take_sent();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flags, TcpFlags::SYN_ACK);
        // Establishment after a retransmitted SYN-ACK takes no RTT
        // sample (Karn) and keeps the backoff.
        s.on_packet(&ack_pkt(1), &mut io);
        assert!(s.is_established());
        assert!(s.srtt().is_none());
    }

    #[test]
    fn window_cap_limits_flight() {
        let cfg = TcpConfig {
            max_window_segments: 3,
            initial_window: 10,
            ..TcpConfig::default()
        };
        let (s, mut io) = established(1_000_000, cfg);
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 3, "window capped at 3 segments");
        assert_eq!(s.flight_size(), 3 * 460);
    }

    #[test]
    fn cubic_variant_grows_and_decreases_by_beta() {
        let cfg = TcpConfig {
            variant: Variant::Cubic,
            initial_window: 10,
            ..TcpConfig::default()
        };
        let (mut s, mut io) = established(10_000_000, cfg);
        let w1 = io.take_sent();
        assert_eq!(w1.len(), 10, "modern IW of 10 segments");
        // Grow past ssthresh into CUBIC congestion avoidance.
        s.ssthresh = 5.0 * 460.0;
        let before = s.cwnd;
        for p in &w1 {
            io.now += SimDuration::from_millis(20);
            s.on_packet(&ack_pkt(p.seq_end()), &mut io);
        }
        assert!(s.cwnd > before, "CUBIC grows in CA");
        io.take_sent();
        // Three dupACKs: multiplicative decrease by beta = 0.7.
        let una = s.snd_una;
        let cwnd_before_loss = s.cwnd;
        for _ in 0..3 {
            s.on_packet(&ack_pkt(una), &mut io);
        }
        assert!(s.in_recovery);
        let expected = cwnd_before_loss / 460.0 * 0.7;
        assert!(
            (s.ssthresh / 460.0 - expected).abs() < 0.6,
            "beta decrease: ssthresh {} vs expected {expected}",
            s.ssthresh / 460.0
        );
    }

    #[test]
    fn old_and_bogus_acks_ignored() {
        let (mut s, mut io) = established(1_000_000, TcpConfig::default());
        let w1 = io.take_sent();
        s.on_packet(&ack_pkt(w1[1].seq_end()), &mut io);
        io.take_sent();
        let una = s.snd_una;
        // Old ACK (below snd_una).
        s.on_packet(&ack_pkt(1), &mut io);
        assert_eq!(s.snd_una, una);
        // ACK beyond snd_nxt.
        s.on_packet(&ack_pkt(u64::MAX / 2), &mut io);
        assert_eq!(s.snd_una, una);
        assert_eq!(s.dup_acks, 0);
    }
}
