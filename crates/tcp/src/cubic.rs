//! CUBIC congestion avoidance (RFC 8312, simplified).
//!
//! The paper motivates its `SPK(k)` definition with "most TCP flows use
//! TCP CUBIC and begin with a congestion window of 10". This module
//! provides the CUBIC window-growth function for the
//! [`crate::Variant::Cubic`] sender, so experiments can contrast
//! classic-era stacks (NewReno, IW=2) with modern ones (CUBIC, IW=10)
//! in the small packet regime — where, notably, CUBIC's growth function
//! is almost irrelevant because windows rarely exceed the
//! fast-retransmit threshold anyway.
//!
//! Simplifications relative to RFC 8312: no HyStart (plain slow start to
//! `ssthresh`), no fast-convergence heuristic, and the TCP-friendly
//! region uses the standard Reno-rate floor.

/// CUBIC's multiplicative decrease factor (`beta_cubic`).
pub const BETA: f64 = 0.7;
/// CUBIC's scaling constant `C`, in segments/sec³.
pub const C: f64 = 0.4;

/// Per-connection CUBIC state.
#[derive(Debug, Clone, Default)]
pub struct CubicState {
    /// Window (segments) just before the last congestion event.
    w_max: f64,
    /// Seconds of congestion-avoidance time accumulated since the last
    /// congestion event (advanced by ACK arrivals).
    t: f64,
    /// Segments acknowledged since the last window increment, for the
    /// Reno-friendly region's per-RTT accounting.
    acked_segments: f64,
}

impl CubicState {
    /// Records a congestion event (fast retransmit or timeout) at the
    /// given window (segments). Returns the new ssthresh in segments.
    pub fn on_congestion(&mut self, cwnd_segments: f64) -> f64 {
        self.w_max = cwnd_segments;
        self.t = 0.0;
        self.acked_segments = 0.0;
        (cwnd_segments * BETA).max(2.0)
    }

    /// The cubic inflection offset `K = cbrt(w_max (1-beta) / C)`.
    fn k(&self) -> f64 {
        (self.w_max * (1.0 - BETA) / C).cbrt()
    }

    /// Window target (segments) at `t` seconds after the last event.
    pub fn window_at(&self, t: f64) -> f64 {
        let d = t - self.k();
        C * d * d * d + self.w_max
    }

    /// Reno-friendly floor (segments) at time `t` with round-trip `rtt`.
    pub fn tcp_friendly_at(&self, t: f64, rtt: f64) -> f64 {
        if rtt <= 0.0 {
            return 0.0;
        }
        self.w_max * BETA + 3.0 * (1.0 - BETA) / (1.0 + BETA) * (t / rtt)
    }

    /// Advances CUBIC on one new ACK during congestion avoidance and
    /// returns the new congestion window in segments.
    ///
    /// `ack_interval` is the estimated time the ACK represents (we use
    /// `rtt / cwnd`, the self-clocked spacing); `rtt` is the smoothed
    /// RTT estimate in seconds.
    pub fn on_ack(&mut self, cwnd_segments: f64, ack_interval: f64, rtt: f64) -> f64 {
        self.t += ack_interval.max(0.0);
        self.acked_segments += 1.0;
        let target = self
            .window_at(self.t + rtt.max(0.0))
            .max(self.tcp_friendly_at(self.t, rtt));
        if target > cwnd_segments {
            // Spread the climb over the ACKs of one RTT, as the RFC's
            // per-ACK increment does.
            cwnd_segments + (target - cwnd_segments) / cwnd_segments.max(1.0)
        } else {
            // Below target (e.g. right after an event in the concave
            // region's flat spot): probe gently.
            cwnd_segments + 0.01 / cwnd_segments.max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_event_sets_beta_decrease() {
        let mut c = CubicState::default();
        let ssthresh = c.on_congestion(10.0);
        assert!((ssthresh - 7.0).abs() < 1e-9);
        // Tiny windows floor at 2 segments.
        assert_eq!(c.on_congestion(1.0), 2.0);
    }

    #[test]
    fn window_recovers_to_wmax_at_k() {
        let mut c = CubicState::default();
        c.on_congestion(20.0);
        let k = c.k();
        assert!((c.window_at(k) - 20.0).abs() < 1e-9, "plateau at W_max");
        // Concave before K, convex after.
        assert!(c.window_at(k * 0.5) < 20.0);
        assert!(c.window_at(k * 1.5) > 20.0);
    }

    #[test]
    fn growth_is_slow_near_plateau_fast_far_away() {
        let mut c = CubicState::default();
        c.on_congestion(50.0);
        let k = c.k();
        let near = c.window_at(k + 0.1) - c.window_at(k);
        let far = c.window_at(k + 2.1) - c.window_at(k + 2.0);
        assert!(far > 10.0 * near, "convex acceleration: {near} vs {far}");
    }

    #[test]
    fn ack_driven_climb_converges_toward_target() {
        let mut c = CubicState::default();
        c.on_congestion(10.0);
        let mut w = 7.0;
        // Simulate 2000 ACKs at rtt=0.2s self-clocked spacing.
        for _ in 0..2_000 {
            w = c.on_ack(w, 0.2 / w, 0.2);
        }
        assert!(w > 10.0, "window regrows past W_max: {w}");
        assert!(w < 200.0, "growth stays sane: {w}");
    }

    #[test]
    fn tcp_friendly_floor_dominates_at_small_windows() {
        // At small W_max and short RTT, the Reno-rate region grows
        // faster than the cubic curve early on.
        let mut c = CubicState::default();
        c.on_congestion(4.0);
        let t = 1.0;
        assert!(c.tcp_friendly_at(t, 0.2) > c.window_at(t));
    }
}
