//! The packet-lifecycle span: one packet's causal chain from link
//! ingress to its terminal event, assembled from the telemetry stream.

use taq_telemetry::{FlowId, Value};

/// How a packet's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Reached its destination; `latency_ns` is send-to-delivery
    /// sim time as reported by the delivering layer.
    Delivered { latency_ns: u64 },
    /// Dropped by a queue discipline. `stage` is the TAQ eviction stage
    /// (1-6), 7 for the NewFlow cap, 0 for non-staged drops (DropTail,
    /// fault-induced rejects without a core drop record).
    Dropped { stage: u8 },
    /// Rejected by the fault layer (`kind` names the fault class:
    /// "blackout", "burst_loss", "corrupt").
    Faulted { kind: &'static str },
    /// Still in flight when the trace was dumped — a packet buffered in
    /// a queue (or lost to an untraced path) at post-mortem time.
    Incomplete,
}

impl SpanOutcome {
    /// Stable tag used as the dump's `outcome` field.
    pub fn tag(&self) -> &'static str {
        match self {
            SpanOutcome::Delivered { .. } => "delivered",
            SpanOutcome::Dropped { .. } => "dropped",
            SpanOutcome::Faulted { .. } => "faulted",
            SpanOutcome::Incomplete => "incomplete",
        }
    }
}

/// One packet's assembled lifecycle. Field order follows the causal
/// chain: arrive → classify → enqueue(depth) → transmit → outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSpan {
    /// Dense per-run packet id (stamped at ingress by the emitting
    /// layer; ids are unique per run, so a span is uniquely keyed).
    pub packet: u64,
    /// The packet's flow 4-tuple.
    pub flow: FlowId,
    /// Link of the first observed enqueue (the traced bottleneck under
    /// a filtered bridge; the first hop otherwise).
    pub link: u32,
    /// Wire bytes.
    pub bytes: u64,
    /// TAQ class assigned at enqueue, when the discipline classifies.
    pub class: Option<&'static str>,
    /// Time of the first link enqueue.
    pub arrive_ns: u64,
    /// Queue depth (packets already resident on `link`) at enqueue.
    pub depth_at_enqueue: u64,
    /// Time serialization onto the wire finished, if it did.
    pub transmit_ns: Option<u64>,
    /// Link enqueues observed (>1 on multi-hop paths with an unfiltered
    /// bridge).
    pub hops: u32,
    /// Fault class that touched this packet in flight, if any
    /// (non-terminal faults — "reorder", "duplicate" — annotate a span
    /// that still delivers).
    pub fault: Option<&'static str>,
    /// Terminal event.
    pub outcome: SpanOutcome,
    /// Time of the terminal event (equals `arrive_ns` for spans dumped
    /// incomplete before any terminal event).
    pub end_ns: u64,
}

impl PacketSpan {
    /// Starts a span at its first link enqueue.
    pub fn begin(packet: u64, flow: FlowId, link: u32, bytes: u64, at_ns: u64, depth: u64) -> Self {
        PacketSpan {
            packet,
            flow,
            link,
            bytes,
            class: None,
            arrive_ns: at_ns,
            depth_at_enqueue: depth,
            transmit_ns: None,
            hops: 1,
            fault: None,
            outcome: SpanOutcome::Incomplete,
            end_ns: at_ns,
        }
    }

    /// Renders the span as one flat JSON object (the dump's
    /// `"record":"span"` line).
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("record".to_string(), Value::from("span")),
            ("packet".to_string(), Value::UInt(self.packet)),
            ("flow".to_string(), Value::Str(self.flow.to_string())),
            ("link".to_string(), Value::from(self.link)),
            ("bytes".to_string(), Value::UInt(self.bytes)),
        ];
        if let Some(class) = self.class {
            pairs.push(("class".to_string(), Value::from(class)));
        }
        pairs.push(("arrive_ns".to_string(), Value::UInt(self.arrive_ns)));
        pairs.push(("depth".to_string(), Value::UInt(self.depth_at_enqueue)));
        if let Some(tx) = self.transmit_ns {
            pairs.push(("transmit_ns".to_string(), Value::UInt(tx)));
        }
        if self.hops > 1 {
            pairs.push(("hops".to_string(), Value::from(self.hops)));
        }
        if let Some(fault) = self.fault {
            pairs.push(("fault".to_string(), Value::from(fault)));
        }
        pairs.push(("outcome".to_string(), Value::from(self.outcome.tag())));
        match self.outcome {
            SpanOutcome::Delivered { latency_ns } => {
                pairs.push(("latency_ns".to_string(), Value::UInt(latency_ns)));
            }
            SpanOutcome::Dropped { stage } => {
                pairs.push(("stage".to_string(), Value::UInt(u64::from(stage))));
            }
            SpanOutcome::Faulted { kind } => {
                pairs.push(("fault_kind".to_string(), Value::from(kind)));
            }
            SpanOutcome::Incomplete => {}
        }
        pairs.push(("end_ns".to_string(), Value::UInt(self.end_ns)));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId {
            src: 1,
            src_port: 80,
            dst: 2,
            dst_port: 9000,
        }
    }

    #[test]
    fn span_renders_causal_chain() {
        let mut span = PacketSpan::begin(42, flow(), 0, 500, 1_000, 3);
        span.class = Some("Normal");
        span.transmit_ns = Some(2_000);
        span.outcome = SpanOutcome::Delivered { latency_ns: 4_000 };
        span.end_ns = 5_000;
        let v = span.to_value();
        assert_eq!(v.get("record").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("packet").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("flow").and_then(Value::as_str), Some("1:80->2:9000"));
        assert_eq!(v.get("class").and_then(Value::as_str), Some("Normal"));
        assert_eq!(v.get("depth").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("delivered"));
        assert_eq!(v.get("latency_ns").and_then(Value::as_u64), Some(4_000));
        assert!(v.get("hops").is_none(), "single-hop spans omit the field");
    }

    #[test]
    fn dropped_span_carries_stage() {
        let mut span = PacketSpan::begin(7, flow(), 0, 500, 10, 0);
        span.outcome = SpanOutcome::Dropped { stage: 5 };
        span.end_ns = 10;
        let v = span.to_value();
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("dropped"));
        assert_eq!(v.get("stage").and_then(Value::as_u64), Some(5));
        assert!(v.get("latency_ns").is_none());
    }
}
