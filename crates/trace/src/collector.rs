//! The trace collector: a [`TelemetrySink`] that assembles the
//! per-packet event stream into lifecycle spans, feeds the flight
//! recorder and sim-time series, and dumps a post-mortem when the
//! trip-wire fires.
//!
//! Sitting behind the telemetry hub is what makes tracing free when
//! disabled (the hub's emit closures never run without sinks) and
//! deterministic when enabled (the collector only *observes* the
//! stream; it feeds nothing back into the simulation).
//!
//! Event ordering contract (guaranteed by the engine and middlebox):
//! `link/enqueue` precedes the discipline's `classified` and `dropped`
//! records for that offer, and a victim's core `dropped` (with its
//! eviction stage) precedes the engine's `link/drop`; `link/drop` is
//! therefore the authoritative finalizer for dropped spans, and
//! `delivered` for delivered ones.

use crate::recorder::FlightRecorder;
use crate::series::{ColumnId, ColumnKind, TimeSeries};
use crate::span::{PacketSpan, SpanOutcome};
use crate::tripwire::TripWire;
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::path::PathBuf;
use taq_telemetry::{Event, FlowId, TelemetrySink, Value};

/// Fault classes that terminate a packet (the fault layer rejects the
/// packet and the engine records the drop).
fn terminal_fault(kind: &str) -> bool {
    matches!(kind, "blackout" | "burst_loss" | "corrupt")
}

/// Configuration for a [`TraceCollector`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Spans retained per link in the flight recorder.
    pub flight_capacity: usize,
    /// Trip-wire threshold: a per-flow activity gap longer than this
    /// triggers a post-mortem dump. `None` disarms the wire (restart
    /// drills and manual [`TraceCollector::trip`] still work).
    pub silence_ns: Option<u64>,
    /// Sim-time series cadence.
    pub series_window_ns: u64,
    /// Where to write the JSONL dump (post-mortem on trip, otherwise at
    /// flush). `None` keeps everything in memory for programmatic use.
    pub dump_path: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            flight_capacity: 512,
            silence_ns: None,
            series_window_ns: 1_000_000_000,
            dump_path: None,
        }
    }
}

/// Assembles packet-lifecycle spans from a telemetry event stream.
///
/// Attach with [`taq_telemetry::shared_sink`] to keep a typed handle
/// for post-run inspection:
///
/// ```
/// use taq_telemetry::{shared_sink, Telemetry};
/// use taq_trace::{TraceCollector, TraceConfig};
///
/// let telemetry = Telemetry::new();
/// let (collector, erased) = shared_sink(TraceCollector::new(TraceConfig::default()));
/// telemetry.add_shared_sink(erased);
/// // ... run ...
/// telemetry.flush();
/// assert!(collector.lock().unwrap().spans_started() == 0);
/// ```
#[derive(Debug)]
pub struct TraceCollector {
    open: HashMap<u64, PacketSpan>,
    recorder: FlightRecorder,
    tripwire: Option<TripWire>,
    series: TimeSeries,
    active_col: ColumnId,
    delivered_pkts_col: ColumnId,
    delivered_bytes_col: ColumnId,
    dropped_col: ColumnId,
    window_flows: HashSet<FlowId>,
    link_depths: HashMap<u32, u64>,
    dump_path: Option<PathBuf>,
    dumped: bool,
    dump_errors: u64,
    started: u64,
    completed: u64,
    orphan_deliveries: u64,
    last_ns: u64,
}

impl TraceCollector {
    /// Creates a collector. Core series columns register up front so
    /// every dump shares their order.
    pub fn new(cfg: TraceConfig) -> Self {
        let mut series = TimeSeries::new(cfg.series_window_ns);
        let active_col = series.column("active_flows", ColumnKind::Counter);
        let delivered_pkts_col = series.column("delivered_pkts", ColumnKind::Counter);
        let delivered_bytes_col = series.column("delivered_bytes", ColumnKind::Counter);
        let dropped_col = series.column("dropped_pkts", ColumnKind::Counter);
        TraceCollector {
            open: HashMap::new(),
            recorder: FlightRecorder::new(cfg.flight_capacity),
            tripwire: cfg.silence_ns.map(TripWire::new),
            series,
            active_col,
            delivered_pkts_col,
            delivered_bytes_col,
            dropped_col,
            window_flows: HashSet::new(),
            link_depths: HashMap::new(),
            dump_path: cfg.dump_path,
            dumped: false,
            dump_errors: 0,
            started: 0,
            completed: 0,
            orphan_deliveries: 0,
            last_ns: 0,
        }
    }

    /// Spans started (first link enqueue seen).
    pub fn spans_started(&self) -> u64 {
        self.started
    }

    /// Spans that reached a terminal event.
    pub fn spans_completed(&self) -> u64 {
        self.completed
    }

    /// Deliveries with no open span: traffic outside the traced links
    /// (ACKs under a filtered bridge) plus second deliveries of
    /// fault-duplicated packets.
    pub fn orphan_deliveries(&self) -> u64 {
        self.orphan_deliveries
    }

    /// The flight recorder's retained spans.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The sim-time series collected so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Dump I/O failures (the collector, like every sink, never takes
    /// down the data path over them).
    pub fn dump_errors(&self) -> u64 {
        self.dump_errors
    }

    /// Trips the wire by hand — the hook for harness-detected invariant
    /// violations — triggering the post-mortem dump if one is
    /// configured and has not already fired.
    pub fn trip(&mut self, reason: &str) {
        let at_ns = self.last_ns;
        let first = self
            .tripwire
            .get_or_insert_with(|| TripWire::new(u64::MAX))
            .trip(reason, at_ns);
        if first {
            self.post_mortem();
        }
    }

    fn note_activity(&mut self, flow: FlowId, at_ns: u64) {
        self.window_flows.insert(flow);
        if let Some(wire) = &mut self.tripwire {
            if wire.note_activity(flow, at_ns) {
                self.post_mortem();
            }
        }
    }

    /// Closes every series window the stream has moved past. The
    /// active-flow gauge is per-window, so it is finalized into the row
    /// just before the close.
    fn roll_windows(&mut self, at_ns: u64) {
        while self.series.window_due(at_ns) {
            let n = self.window_flows.len() as u64;
            self.series.set(self.active_col, n);
            self.window_flows.clear();
            self.series.close_window();
        }
    }

    fn depth_col(&mut self, link: u32) -> ColumnId {
        self.series
            .column(&format!("depth_link{link}"), ColumnKind::Gauge)
    }

    fn finalize(&mut self, packet: u64, outcome: SpanOutcome, end_ns: u64) -> bool {
        let Some(mut span) = self.open.remove(&packet) else {
            return false;
        };
        span.outcome = outcome;
        span.end_ns = end_ns;
        self.completed += 1;
        self.recorder.push(span);
        true
    }

    fn on_link_event(
        &mut self,
        at_ns: u64,
        link: u32,
        kind: &str,
        packet: u64,
        flow: FlowId,
        bytes: u64,
    ) {
        match kind {
            "enqueue" => {
                let depth = self.link_depths.entry(link).or_insert(0);
                let resident = *depth;
                *depth += 1;
                match self.open.get_mut(&packet) {
                    Some(span) => span.hops += 1,
                    None => {
                        self.started += 1;
                        self.open.insert(
                            packet,
                            PacketSpan::begin(packet, flow, link, bytes, at_ns, resident),
                        );
                    }
                }
                let col = self.depth_col(link);
                self.series.set(col, resident + 1);
                self.note_activity(flow, at_ns);
            }
            "drop" => {
                let depth = self.link_depths.entry(link).or_insert(0);
                *depth = depth.saturating_sub(1);
                let resident = *depth;
                let col = self.depth_col(link);
                self.series.set(col, resident);
                self.series.add(self.dropped_col, 1);
                // The authoritative finalizer: a core `dropped` record,
                // if any, already parked its stage on the span; a
                // terminal fault parked its class; a bare queue drop
                // (DropTail) has neither.
                let outcome = match self.open.get(&packet) {
                    Some(span) => match span.outcome {
                        SpanOutcome::Dropped { stage } => SpanOutcome::Dropped { stage },
                        _ => match span.fault {
                            Some(kind) if terminal_fault(kind) => SpanOutcome::Faulted { kind },
                            _ => SpanOutcome::Dropped { stage: 0 },
                        },
                    },
                    None => return,
                };
                self.finalize(packet, outcome, at_ns);
            }
            "transmit" => {
                let depth = self.link_depths.entry(link).or_insert(0);
                *depth = depth.saturating_sub(1);
                let resident = *depth;
                let col = self.depth_col(link);
                self.series.set(col, resident);
                if let Some(span) = self.open.get_mut(&packet) {
                    span.transmit_ns = Some(at_ns);
                }
            }
            _ => {}
        }
    }

    /// Writes the whole trace as JSONL: a meta line, the trip record
    /// (if any), every retained span, every still-open span (outcome
    /// `incomplete`), then the series header and rows.
    pub fn dump_to_writer<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let meta = Value::Object(vec![
            ("record".to_string(), Value::from("meta")),
            ("schema".to_string(), Value::from("taq-trace-v1")),
            ("spans_started".to_string(), Value::UInt(self.started)),
            ("spans_completed".to_string(), Value::UInt(self.completed)),
            (
                "spans_open".to_string(),
                Value::UInt(self.open.len() as u64),
            ),
            (
                "orphan_deliveries".to_string(),
                Value::UInt(self.orphan_deliveries),
            ),
            (
                "recorder_evicted".to_string(),
                Value::UInt(self.recorder.evicted()),
            ),
        ]);
        writeln!(out, "{}", meta.to_json())?;
        if let Some(rec) = self.tripwire.as_ref().and_then(TripWire::record) {
            writeln!(out, "{}", rec.to_value().to_json())?;
        }
        for span in self.recorder.iter() {
            writeln!(out, "{}", span.to_value().to_json())?;
        }
        // Open spans, in packet order for a deterministic dump.
        let mut pending: Vec<&PacketSpan> = self.open.values().collect();
        pending.sort_by_key(|s| s.packet);
        for span in pending {
            writeln!(out, "{}", span.to_value().to_json())?;
        }
        writeln!(out, "{}", self.series.header_value().to_json())?;
        for (t_ns, cells) in self.series.rows_padded() {
            writeln!(out, "{}", TimeSeries::row_value(t_ns, &cells).to_json())?;
        }
        Ok(())
    }

    /// The dump as an in-memory string (tests, embedding harnesses).
    pub fn dump_string(&self) -> String {
        let mut buf = Vec::new();
        self.dump_to_writer(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("dump is UTF-8")
    }

    /// Whether the post-mortem already fired (at most one per run; the
    /// point is to freeze state near the *first* pathology).
    pub fn dumped(&self) -> bool {
        self.dumped
    }

    fn post_mortem(&mut self) {
        let Some(path) = self.dump_path.clone() else {
            return;
        };
        if self.dumped {
            return;
        }
        self.dumped = true;
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if self.dump_to_writer(&mut f).is_err() {
                    self.dump_errors += 1;
                }
            }
            Err(_) => self.dump_errors += 1,
        }
    }
}

impl TelemetrySink for TraceCollector {
    fn emit(&mut self, at_ns: u64, event: &Event) {
        self.last_ns = self.last_ns.max(at_ns);
        self.roll_windows(at_ns);
        match event {
            Event::Link {
                link,
                kind,
                packet,
                flow,
                bytes,
            } => self.on_link_event(at_ns, *link, kind, *packet, *flow, *bytes),
            Event::Classified { packet, class, .. } => {
                if let Some(span) = self.open.get_mut(packet) {
                    span.class = Some(class);
                }
                let col = self
                    .series
                    .column(&format!("class_{class}"), ColumnKind::Counter);
                self.series.add(col, 1);
            }
            Event::Dropped { packet, stage, .. } => {
                // Park the stage; the engine's link/drop finalizes.
                if let Some(span) = self.open.get_mut(packet) {
                    span.outcome = SpanOutcome::Dropped { stage: *stage };
                    span.end_ns = at_ns;
                }
            }
            Event::Delivered {
                packet,
                flow,
                bytes,
                latency_ns,
            } => {
                self.series.add(self.delivered_pkts_col, 1);
                self.series.add(self.delivered_bytes_col, *bytes);
                if !self.finalize(
                    *packet,
                    SpanOutcome::Delivered {
                        latency_ns: *latency_ns,
                    },
                    at_ns,
                ) {
                    self.orphan_deliveries += 1;
                }
                self.note_activity(*flow, at_ns);
            }
            Event::Fault { kind, packet, .. } => {
                if let Some(packet) = packet {
                    if let Some(span) = self.open.get_mut(packet) {
                        span.fault = Some(kind);
                    }
                }
                if *kind == "restart" {
                    let at = self.last_ns;
                    let first = self
                        .tripwire
                        .get_or_insert_with(|| TripWire::new(u64::MAX))
                        .trip("restart", at);
                    if first {
                        self.post_mortem();
                    }
                }
            }
            _ => {}
        }
    }

    fn flush(&mut self) {
        // End-of-run dump, unless a trip-wire post-mortem already froze
        // the interesting state.
        if !self.dumped {
            self.post_mortem();
        }
        if self.dump_errors > 0 {
            eprintln!(
                "trace: {} dump error(s); the trace on disk is incomplete",
                self.dump_errors
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(port: u16) -> FlowId {
        FlowId {
            src: 1,
            src_port: port,
            dst: 2,
            dst_port: 80,
        }
    }

    fn enqueue(packet: u64, port: u16) -> Event {
        Event::Link {
            link: 0,
            kind: "enqueue",
            packet,
            flow: flow(port),
            bytes: 500,
        }
    }

    fn transmit(packet: u64, port: u16) -> Event {
        Event::Link {
            link: 0,
            kind: "transmit",
            packet,
            flow: flow(port),
            bytes: 500,
        }
    }

    fn deliver(packet: u64, port: u16, latency_ns: u64) -> Event {
        Event::Delivered {
            packet,
            flow: flow(port),
            bytes: 500,
            latency_ns,
        }
    }

    #[test]
    fn assembles_a_delivered_span() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.emit(100, &enqueue(1, 1));
        c.emit(
            100,
            &Event::Classified {
                packet: 1,
                flow: flow(1),
                class: "NewFlow",
                retransmission: false,
            },
        );
        c.emit(200, &transmit(1, 1));
        c.emit(350, &deliver(1, 1, 250));
        assert_eq!(c.spans_started(), 1);
        assert_eq!(c.spans_completed(), 1);
        let span = c.recorder().iter().next().expect("one span");
        assert_eq!(span.packet, 1);
        assert_eq!(span.class, Some("NewFlow"));
        assert_eq!(span.depth_at_enqueue, 0);
        assert_eq!(span.transmit_ns, Some(200));
        assert_eq!(span.outcome, SpanOutcome::Delivered { latency_ns: 250 });
        assert_eq!(span.end_ns, 350);
    }

    #[test]
    fn core_drop_stage_survives_to_link_drop() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.emit(10, &enqueue(1, 1));
        c.emit(20, &enqueue(2, 2));
        // Packet 2's arrival evicts packet 1 at stage 4: the core
        // records the victim's stage, then the engine observes the drop.
        c.emit(
            20,
            &Event::Dropped {
                packet: 1,
                flow: flow(1),
                stage: 4,
                retransmission: false,
            },
        );
        c.emit(
            20,
            &Event::Link {
                link: 0,
                kind: "drop",
                packet: 1,
                flow: flow(1),
                bytes: 500,
            },
        );
        let span = c.recorder().iter().next().expect("victim span");
        assert_eq!(span.packet, 1);
        assert_eq!(span.outcome, SpanOutcome::Dropped { stage: 4 });
        // Packet 2 saw one resident packet at enqueue.
        assert_eq!(c.open.get(&2).unwrap().depth_at_enqueue, 1);
    }

    #[test]
    fn terminal_fault_attributes_the_drop() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.emit(10, &enqueue(1, 1));
        c.emit(
            10,
            &Event::Fault {
                link: 0,
                kind: "burst_loss",
                packet: Some(1),
                flow: Some(flow(1)),
                value: 500.0,
            },
        );
        c.emit(
            10,
            &Event::Link {
                link: 0,
                kind: "drop",
                packet: 1,
                flow: flow(1),
                bytes: 500,
            },
        );
        let span = c.recorder().iter().next().expect("faulted span");
        assert_eq!(span.outcome, SpanOutcome::Faulted { kind: "burst_loss" });
        assert_eq!(span.fault, Some("burst_loss"));
    }

    #[test]
    fn silence_trip_fires_once_and_dumps() {
        let dir = std::env::temp_dir().join("taq-trace-test-trip");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("dump.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut c = TraceCollector::new(TraceConfig {
            silence_ns: Some(1_000),
            dump_path: Some(path.clone()),
            ..TraceConfig::default()
        });
        c.emit(0, &enqueue(1, 1));
        c.emit(100, &transmit(1, 1));
        c.emit(150, &deliver(1, 1, 150));
        assert!(!c.dumped());
        // The flow reappears after a 4850 ns gap: the wire trips and the
        // post-mortem lands on disk immediately.
        c.emit(5_000, &enqueue(2, 1));
        assert!(c.dumped());
        let dump = std::fs::read_to_string(&path).expect("post-mortem written");
        assert!(dump.contains("\"record\":\"trip\""));
        assert!(dump.contains("\"reason\":\"flow-silence\""));
        assert!(dump.contains("\"record\":\"span\""));
        // Later flushes do not overwrite the post-mortem.
        std::fs::remove_file(&path).unwrap();
        c.flush();
        assert!(!path.exists(), "flush after a trip leaves the dump alone");
    }

    #[test]
    fn restart_fault_trips_the_wire() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.emit(10, &enqueue(1, 1));
        c.emit(
            50,
            &Event::Fault {
                link: 0,
                kind: "restart",
                packet: None,
                flow: None,
                value: 3.0,
            },
        );
        let rec = c.tripwire.as_ref().unwrap().record().expect("tripped");
        assert_eq!(rec.reason, "restart");
        assert_eq!(rec.at_ns, 50);
    }

    #[test]
    fn series_counts_windows_and_orphans() {
        let mut c = TraceCollector::new(TraceConfig {
            series_window_ns: 100,
            ..TraceConfig::default()
        });
        c.emit(10, &enqueue(1, 1));
        c.emit(20, &transmit(1, 1));
        c.emit(30, &deliver(1, 1, 20));
        // An ACK delivered on an untraced path: orphan.
        c.emit(40, &deliver(99, 2, 5));
        // Crossing t=100 closes the first window.
        c.emit(150, &enqueue(2, 1));
        assert_eq!(c.orphan_deliveries(), 1);
        assert_eq!(c.series().len(), 1);
        let dump = c.dump_string();
        assert!(dump.contains("\"record\":\"meta\""));
        assert!(dump.contains("\"record\":\"series_header\""));
        assert!(dump.contains("\"record\":\"series_row\""));
        assert!(
            dump.contains("\"outcome\":\"incomplete\""),
            "open span dumped"
        );
        // The first window saw both flows and the two deliveries.
        let row = dump
            .lines()
            .find(|l| l.contains("series_row"))
            .expect("one row");
        let v = Value::parse(row).unwrap();
        let values = v.get("values").and_then(Value::as_array).unwrap();
        // Columns: active_flows, delivered_pkts, delivered_bytes, ...
        assert_eq!(values[0].as_u64(), Some(2));
        assert_eq!(values[1].as_u64(), Some(2));
        assert_eq!(values[2].as_u64(), Some(1_000));
    }
}
