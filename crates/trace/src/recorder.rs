//! The flight recorder: a fixed-capacity ring of the most recent
//! completed spans, kept per link so a busy access link cannot evict
//! the bottleneck's history.

use crate::span::PacketSpan;
use std::collections::{BTreeMap, VecDeque};

/// Bounded per-link span storage. Completed spans push in arrival
/// order; once a link's ring is full, the oldest span on *that link*
/// is evicted. `BTreeMap` keeps dump order deterministic.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, VecDeque<PacketSpan>>,
    total: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` spans per link.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            rings: BTreeMap::new(),
            total: 0,
            evicted: 0,
        }
    }

    /// Records a completed span, evicting the oldest on its link if the
    /// ring is full.
    pub fn push(&mut self, span: PacketSpan) {
        self.total += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        let ring = self.rings.entry(span.link).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted += 1;
        }
        ring.push_back(span);
    }

    /// Spans completed over the whole run (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Spans pushed out of their ring to respect `capacity`.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Spans currently retained, across all links.
    pub fn len(&self) -> usize {
        self.rings.values().map(VecDeque::len).sum()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained spans on one link, oldest first.
    pub fn link(&self, link: u32) -> impl Iterator<Item = &PacketSpan> {
        self.rings.get(&link).into_iter().flatten()
    }

    /// All retained spans, grouped by link id (ascending), oldest first
    /// within a link.
    pub fn iter(&self) -> impl Iterator<Item = &PacketSpan> {
        self.rings.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_telemetry::FlowId;

    fn span(packet: u64, link: u32) -> PacketSpan {
        PacketSpan::begin(
            packet,
            FlowId {
                src: 1,
                src_port: 1,
                dst: 2,
                dst_port: 2,
            },
            link,
            500,
            packet * 10,
            0,
        )
    }

    #[test]
    fn wraparound_keeps_exactly_last_n_per_link() {
        let mut rec = FlightRecorder::new(3);
        for packet in 1..=10u64 {
            rec.push(span(packet, 0));
        }
        // A second link fills independently.
        for packet in 11..=12u64 {
            rec.push(span(packet, 1));
        }
        assert_eq!(rec.total(), 12);
        assert_eq!(rec.evicted(), 7);
        assert_eq!(rec.len(), 5);
        let link0: Vec<u64> = rec.link(0).map(|s| s.packet).collect();
        assert_eq!(link0, vec![8, 9, 10], "exactly the last 3 on link 0");
        let link1: Vec<u64> = rec.link(1).map(|s| s.packet).collect();
        assert_eq!(link1, vec![11, 12]);
        // Global iteration groups by link id.
        let all: Vec<u64> = rec.iter().map(|s| s.packet).collect();
        assert_eq!(all, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut rec = FlightRecorder::new(0);
        rec.push(span(1, 0));
        assert_eq!(rec.total(), 1);
        assert_eq!(rec.evicted(), 1);
        assert!(rec.is_empty());
    }
}
