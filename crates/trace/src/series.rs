//! Sim-time series: registry-driven periodic sampling on a sim-clock
//! cadence, stored columnar (one row of u64 cells per window).
//!
//! Columns register lazily in event order — deterministic because the
//! event stream is — so early rows can be narrower than the final
//! registry; [`TimeSeries::rows_padded`] squares the table up at dump
//! time.

use std::collections::HashMap;
use taq_telemetry::Value;

/// Aggregation discipline for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Accumulates within a window, resets to 0 at each boundary
    /// (rates: delivered bytes, drops, per-class packets).
    Counter,
    /// Holds the most recent value across boundaries (levels: queue
    /// depth).
    Gauge,
}

/// Opaque column handle returned by [`TimeSeries::column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnId(usize);

/// Columnar sim-time samples with a fixed window cadence.
#[derive(Debug)]
pub struct TimeSeries {
    window_ns: u64,
    /// Exclusive upper edge of the currently accumulating window.
    boundary_ns: u64,
    names: Vec<String>,
    kinds: Vec<ColumnKind>,
    current: Vec<u64>,
    index: HashMap<String, usize>,
    rows: Vec<(u64, Vec<u64>)>,
}

impl TimeSeries {
    /// Creates a series sampling every `window_ns` of sim time.
    pub fn new(window_ns: u64) -> Self {
        TimeSeries {
            window_ns: window_ns.max(1),
            boundary_ns: window_ns.max(1),
            names: Vec::new(),
            kinds: Vec::new(),
            current: Vec::new(),
            index: HashMap::new(),
            rows: Vec::new(),
        }
    }

    /// The sampling cadence.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Returns the column named `name`, registering it on first use.
    pub fn column(&mut self, name: &str, kind: ColumnKind) -> ColumnId {
        if let Some(&i) = self.index.get(name) {
            return ColumnId(i);
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.kinds.push(kind);
        self.current.push(0);
        self.index.insert(name.to_string(), i);
        ColumnId(i)
    }

    /// Adds `delta` to a counter (or bumps a gauge — callers use `set`
    /// for gauges).
    pub fn add(&mut self, col: ColumnId, delta: u64) {
        self.current[col.0] += delta;
    }

    /// Sets a column's current value.
    pub fn set(&mut self, col: ColumnId, value: u64) {
        self.current[col.0] = value;
    }

    /// `true` when `at_ns` lies at or beyond the accumulating window's
    /// edge — the caller should finish window-scoped gauges (e.g.
    /// active-flow counts) and then [`TimeSeries::close_window`].
    pub fn window_due(&self, at_ns: u64) -> bool {
        at_ns >= self.boundary_ns
    }

    /// Closes the accumulating window: snapshots the current row at the
    /// window's edge, resets counters, and carries gauges forward.
    pub fn close_window(&mut self) {
        self.rows.push((self.boundary_ns, self.current.clone()));
        self.boundary_ns += self.window_ns;
        for (kind, cell) in self.kinds.iter().zip(self.current.iter_mut()) {
            if *kind == ColumnKind::Counter {
                *cell = 0;
            }
        }
    }

    /// Column names in registration order.
    pub fn columns(&self) -> &[String] {
        &self.names
    }

    /// Closed rows, each padded with zeros to the final column count.
    pub fn rows_padded(&self) -> impl Iterator<Item = (u64, Vec<u64>)> + '_ {
        let width = self.names.len();
        self.rows.iter().map(move |(t, cells)| {
            let mut padded = cells.clone();
            padded.resize(width, 0);
            (*t, padded)
        })
    }

    /// Number of closed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no window has closed yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the dump's `"record":"series_header"` line.
    pub fn header_value(&self) -> Value {
        Value::Object(vec![
            ("record".to_string(), Value::from("series_header")),
            ("window_ns".to_string(), Value::UInt(self.window_ns)),
            (
                "columns".to_string(),
                Value::Array(self.names.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ])
    }

    /// Renders one padded row as a `"record":"series_row"` line.
    pub fn row_value(t_ns: u64, cells: &[u64]) -> Value {
        Value::Object(vec![
            ("record".to_string(), Value::from("series_row")),
            ("t_ns".to_string(), Value::UInt(t_ns)),
            (
                "values".to_string(),
                Value::Array(cells.iter().map(|&c| Value::UInt(c)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset_and_gauges_carry() {
        let mut ts = TimeSeries::new(100);
        let pkts = ts.column("delivered_pkts", ColumnKind::Counter);
        let depth = ts.column("depth", ColumnKind::Gauge);
        ts.add(pkts, 3);
        ts.set(depth, 7);
        assert!(!ts.window_due(99));
        assert!(ts.window_due(100));
        ts.close_window();
        // Second window: only the gauge persists.
        assert!(ts.window_due(200));
        ts.close_window();
        let rows: Vec<_> = ts.rows_padded().collect();
        assert_eq!(rows, vec![(100, vec![3, 7]), (200, vec![0, 7])]);
    }

    #[test]
    fn late_columns_pad_earlier_rows() {
        let mut ts = TimeSeries::new(10);
        let a = ts.column("a", ColumnKind::Counter);
        ts.add(a, 1);
        ts.close_window();
        let b = ts.column("b", ColumnKind::Counter);
        ts.add(b, 5);
        ts.close_window();
        let rows: Vec<_> = ts.rows_padded().collect();
        assert_eq!(rows[0], (10, vec![1, 0]), "early row padded");
        assert_eq!(rows[1], (20, vec![0, 5]));
        assert_eq!(ts.columns(), &["a".to_string(), "b".to_string()]);
        // Re-registering returns the same column.
        assert_eq!(ts.column("a", ColumnKind::Counter), a);
    }
}
