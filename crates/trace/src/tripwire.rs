//! The trip-wire: live detection of the paper's Figure 1 pathology —
//! a flow falling silent for longer than a configured threshold.
//!
//! The wire arms itself per flow on first activity and trips when the
//! *next* activity reveals a gap larger than the threshold (a
//! sink-driven detector cannot see silence until something breaks it;
//! the flight recorder dump it triggers is what holds the evidence of
//! what happened around the gap). Testbed crash-restart drills trip it
//! directly, as do harness-detected invariant violations via
//! [`crate::TraceCollector::trip`].

use std::collections::HashMap;
use taq_telemetry::{FlowId, Value};

/// Why a post-mortem dump was triggered.
#[derive(Debug, Clone, PartialEq)]
pub struct TripRecord {
    /// Human-readable cause ("flow-silence", "restart", or a
    /// harness-supplied invariant name).
    pub reason: String,
    /// The flow that tripped the wire, for per-flow causes.
    pub flow: Option<FlowId>,
    /// When the trip was detected.
    pub at_ns: u64,
    /// Size of the offending gap, for silence trips.
    pub gap_ns: u64,
}

impl TripRecord {
    /// Renders the dump's `"record":"trip"` line.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("record".to_string(), Value::from("trip")),
            ("reason".to_string(), Value::Str(self.reason.clone())),
        ];
        if let Some(flow) = &self.flow {
            pairs.push(("flow".to_string(), Value::Str(flow.to_string())));
        }
        pairs.push(("at_ns".to_string(), Value::UInt(self.at_ns)));
        if self.gap_ns > 0 {
            pairs.push(("gap_ns".to_string(), Value::UInt(self.gap_ns)));
        }
        Value::Object(pairs)
    }
}

/// Per-flow silence detector. Only the first trip is kept: the point of
/// the wire is to freeze the flight recorder close to the first
/// pathology, not to catalogue every one.
#[derive(Debug)]
pub struct TripWire {
    silence_ns: u64,
    last_seen: HashMap<FlowId, u64>,
    tripped: Option<TripRecord>,
}

impl TripWire {
    /// Creates a wire tripping on per-flow gaps larger than
    /// `silence_ns`.
    pub fn new(silence_ns: u64) -> Self {
        TripWire {
            silence_ns,
            last_seen: HashMap::new(),
            tripped: None,
        }
    }

    /// Notes flow activity at `at_ns`; returns `true` if this activity
    /// revealed a silence gap and the wire just tripped.
    pub fn note_activity(&mut self, flow: FlowId, at_ns: u64) -> bool {
        let prev = self.last_seen.insert(flow, at_ns);
        if self.tripped.is_some() {
            return false;
        }
        if let Some(prev) = prev {
            let gap = at_ns.saturating_sub(prev);
            if gap > self.silence_ns {
                self.tripped = Some(TripRecord {
                    reason: "flow-silence".to_string(),
                    flow: Some(flow),
                    at_ns,
                    gap_ns: gap,
                });
                return true;
            }
        }
        false
    }

    /// Trips the wire directly (restart drills, invariant violations).
    /// Returns `true` if this was the first trip.
    pub fn trip(&mut self, reason: &str, at_ns: u64) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        self.tripped = Some(TripRecord {
            reason: reason.to_string(),
            flow: None,
            at_ns,
            gap_ns: 0,
        });
        true
    }

    /// The first trip, if any.
    pub fn record(&self) -> Option<&TripRecord> {
        self.tripped.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(port: u16) -> FlowId {
        FlowId {
            src: 1,
            src_port: port,
            dst: 2,
            dst_port: 80,
        }
    }

    #[test]
    fn trips_on_first_gap_over_threshold() {
        let mut wire = TripWire::new(1_000);
        assert!(!wire.note_activity(flow(1), 0), "first activity arms");
        assert!(!wire.note_activity(flow(1), 900), "gap under threshold");
        assert!(!wire.note_activity(flow(2), 950));
        assert!(wire.note_activity(flow(1), 2_500), "900 -> 2500 trips");
        let rec = wire.record().expect("tripped");
        assert_eq!(rec.reason, "flow-silence");
        assert_eq!(rec.flow, Some(flow(1)));
        assert_eq!(rec.gap_ns, 1_600);
        // Later, larger gaps do not replace the first record.
        assert!(!wire.note_activity(flow(2), 9_999));
        assert_eq!(wire.record().unwrap().at_ns, 2_500);
    }

    #[test]
    fn manual_trip_wins_only_once() {
        let mut wire = TripWire::new(u64::MAX);
        assert!(wire.trip("restart", 5));
        assert!(!wire.trip("restart", 6));
        assert_eq!(wire.record().unwrap().reason, "restart");
        assert_eq!(wire.record().unwrap().at_ns, 5);
    }
}
