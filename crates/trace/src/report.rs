//! Offline analysis of trace dumps: per-flow latency percentiles,
//! silence-period distributions, and a sliding-window Jain fairness
//! timeline — the paper's Figure 1/Figure 3 evidence, time-resolved.

use std::collections::BTreeMap;
use taq_telemetry::Value;

/// Analysis knobs for [`TraceReport::render`].
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Per-flow activity gaps longer than this count as silence.
    pub silence_ns: u64,
    /// Jain fairness window.
    pub window_ns: u64,
    /// Per-flow tables show at most this many rows (worst flows first);
    /// the rest are summarized in a trailing count.
    pub max_table_rows: usize,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            silence_ns: 1_000_000_000,
            window_ns: 1_000_000_000,
            max_table_rows: 40,
        }
    }
}

/// One `"record":"span"` line, parsed back from a dump. Strings replace
/// the collector's `&'static str`s — a report outlives the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    pub packet: u64,
    pub flow: String,
    pub link: u32,
    pub bytes: u64,
    pub class: Option<String>,
    pub arrive_ns: u64,
    pub depth: u64,
    pub transmit_ns: Option<u64>,
    pub outcome: String,
    pub latency_ns: Option<u64>,
    pub stage: Option<u8>,
    pub fault_kind: Option<String>,
    pub end_ns: u64,
}

/// The dump's trip record, if the wire fired.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrip {
    pub reason: String,
    pub flow: Option<String>,
    pub at_ns: u64,
    pub gap_ns: u64,
}

/// Exact latency percentiles for one flow's delivered spans.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Silence periods observed for one flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SilenceStats {
    pub count: u64,
    pub longest_ns: u64,
    pub total_ns: u64,
}

/// A parsed trace dump plus its derived analyses.
#[derive(Debug, Default)]
pub struct TraceReport {
    pub spans: Vec<ParsedSpan>,
    pub trip: Option<ParsedTrip>,
    pub series_columns: Vec<String>,
    pub series_window_ns: u64,
    pub series_rows: Vec<(u64, Vec<u64>)>,
    /// Lines that failed to parse (a truncated dump still reports).
    pub skipped_lines: u64,
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Exact percentile over a sorted slice (nearest-rank: the smallest
/// value with at least `q` of the sample at or below it).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl TraceReport {
    /// Parses a JSONL dump. Unknown record kinds and malformed lines
    /// are skipped (and counted), so a post-mortem truncated by a crash
    /// still yields a report.
    pub fn parse(text: &str) -> TraceReport {
        let mut report = TraceReport::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = Value::parse(line) else {
                report.skipped_lines += 1;
                continue;
            };
            match v.get("record").and_then(Value::as_str) {
                Some("span") => {
                    let (Some(packet), Some(flow), Some(outcome)) = (
                        get_u64(&v, "packet"),
                        get_str(&v, "flow"),
                        get_str(&v, "outcome"),
                    ) else {
                        report.skipped_lines += 1;
                        continue;
                    };
                    report.spans.push(ParsedSpan {
                        packet,
                        flow,
                        link: get_u64(&v, "link").unwrap_or(0) as u32,
                        bytes: get_u64(&v, "bytes").unwrap_or(0),
                        class: get_str(&v, "class"),
                        arrive_ns: get_u64(&v, "arrive_ns").unwrap_or(0),
                        depth: get_u64(&v, "depth").unwrap_or(0),
                        transmit_ns: get_u64(&v, "transmit_ns"),
                        outcome,
                        latency_ns: get_u64(&v, "latency_ns"),
                        stage: get_u64(&v, "stage").map(|s| s.min(255) as u8),
                        fault_kind: get_str(&v, "fault_kind"),
                        end_ns: get_u64(&v, "end_ns").unwrap_or(0),
                    });
                }
                Some("trip") => {
                    report.trip = Some(ParsedTrip {
                        reason: get_str(&v, "reason").unwrap_or_default(),
                        flow: get_str(&v, "flow"),
                        at_ns: get_u64(&v, "at_ns").unwrap_or(0),
                        gap_ns: get_u64(&v, "gap_ns").unwrap_or(0),
                    });
                }
                Some("series_header") => {
                    report.series_window_ns = get_u64(&v, "window_ns").unwrap_or(0);
                    report.series_columns = v
                        .get("columns")
                        .and_then(Value::as_array)
                        .map(|cols| {
                            cols.iter()
                                .filter_map(|c| c.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default();
                }
                Some("series_row") => {
                    let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                    let cells = v
                        .get("values")
                        .and_then(Value::as_array)
                        .map(|vals| vals.iter().filter_map(Value::as_u64).collect())
                        .unwrap_or_default();
                    report.series_rows.push((t_ns, cells));
                }
                Some("meta") | Some(_) => {}
                None => report.skipped_lines += 1,
            }
        }
        report
    }

    /// Per-flow delivery-latency percentiles, flows sorted by name.
    pub fn latency_by_flow(&self) -> BTreeMap<String, LatencyStats> {
        let mut per_flow: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for span in &self.spans {
            if let Some(latency) = span.latency_ns {
                per_flow.entry(span.flow.clone()).or_default().push(latency);
            }
        }
        per_flow
            .into_iter()
            .map(|(flow, mut lat)| {
                lat.sort_unstable();
                let stats = LatencyStats {
                    count: lat.len() as u64,
                    p50: percentile(&lat, 0.50),
                    p95: percentile(&lat, 0.95),
                    p99: percentile(&lat, 0.99),
                    max: *lat.last().unwrap(),
                };
                (flow, stats)
            })
            .collect()
    }

    /// Per-flow silence periods: gaps between consecutive span
    /// activity instants (arrive and end times) exceeding `threshold`.
    pub fn silence_periods(&self, threshold_ns: u64) -> BTreeMap<String, SilenceStats> {
        let mut instants: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for span in &self.spans {
            let f = instants.entry(span.flow.clone()).or_default();
            f.push(span.arrive_ns);
            f.push(span.end_ns);
        }
        let mut out = BTreeMap::new();
        for (flow, mut times) in instants {
            times.sort_unstable();
            let mut stats = SilenceStats::default();
            for pair in times.windows(2) {
                let gap = pair[1] - pair[0];
                if gap > threshold_ns {
                    stats.count += 1;
                    stats.longest_ns = stats.longest_ns.max(gap);
                    stats.total_ns += gap;
                }
            }
            if stats.count > 0 {
                out.insert(flow, stats);
            }
        }
        out
    }

    /// Jain fairness index over sliding windows of per-flow delivered
    /// bytes. Each element is `(window_end_ns, index, active_flows)`;
    /// the index is `None` for windows with no deliveries.
    pub fn jain_timeline(&self, window_ns: u64) -> Vec<(u64, Option<f64>, usize)> {
        let window_ns = window_ns.max(1);
        let horizon = self
            .spans
            .iter()
            .filter(|s| s.outcome == "delivered")
            .map(|s| s.end_ns)
            .max()
            .unwrap_or(0);
        if horizon == 0 {
            return Vec::new();
        }
        let windows = horizon / window_ns + 1;
        let mut per_window: Vec<BTreeMap<&str, u64>> =
            (0..windows).map(|_| BTreeMap::new()).collect();
        for span in &self.spans {
            if span.outcome != "delivered" {
                continue;
            }
            let w = (span.end_ns / window_ns) as usize;
            *per_window[w].entry(span.flow.as_str()).or_insert(0) += span.bytes;
        }
        per_window
            .into_iter()
            .enumerate()
            .map(|(i, flows)| {
                let end = (i as u64 + 1) * window_ns;
                let n = flows.len();
                if n == 0 {
                    return (end, None, 0);
                }
                let sum: f64 = flows.values().map(|&b| b as f64).sum();
                let sumsq: f64 = flows.values().map(|&b| (b as f64) * (b as f64)).sum();
                let jain = if sumsq > 0.0 {
                    (sum * sum) / (n as f64 * sumsq)
                } else {
                    1.0
                };
                (end, Some(jain), n)
            })
            .collect()
    }

    /// Renders the full analysis table.
    pub fn render(&self, cfg: &ReportConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let delivered = self
            .spans
            .iter()
            .filter(|s| s.outcome == "delivered")
            .count();
        let dropped = self.spans.iter().filter(|s| s.outcome == "dropped").count();
        let faulted = self.spans.iter().filter(|s| s.outcome == "faulted").count();
        let incomplete = self
            .spans
            .iter()
            .filter(|s| s.outcome == "incomplete")
            .count();
        let _ = writeln!(
            out,
            "== trace report: {} spans ({delivered} delivered, {dropped} dropped, {faulted} faulted, {incomplete} incomplete)",
            self.spans.len()
        );
        if self.skipped_lines > 0 {
            let _ = writeln!(out, "  ({} unparseable lines skipped)", self.skipped_lines);
        }
        if let Some(trip) = &self.trip {
            let flow = trip.flow.as_deref().unwrap_or("-");
            let _ = writeln!(
                out,
                "  TRIP: {} (flow {flow}) at t={:.1} ms, gap {:.1} ms",
                trip.reason,
                ms(trip.at_ns),
                ms(trip.gap_ns)
            );
        }
        let latency = self.latency_by_flow();
        if !latency.is_empty() {
            // Worst tails first: on a wide workload the interesting
            // flows are the slow ones, not the alphabetically early.
            let mut rows: Vec<_> = latency.iter().collect();
            rows.sort_by(|a, b| b.1.p99.cmp(&a.1.p99).then_with(|| a.0.cmp(b.0)));
            let shown = rows.len().min(cfg.max_table_rows);
            let _ = writeln!(out, "  per-flow delivery latency (ms), worst p99 first:");
            let _ = writeln!(
                out,
                "    {:<24} {:>6} {:>9} {:>9} {:>9} {:>9}",
                "flow", "n", "p50", "p95", "p99", "max"
            );
            for (flow, s) in &rows[..shown] {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    flow,
                    s.count,
                    ms(s.p50),
                    ms(s.p95),
                    ms(s.p99),
                    ms(s.max)
                );
            }
            if rows.len() > shown {
                let _ = writeln!(out, "    … and {} more flows", rows.len() - shown);
            }
        }
        let silence = self.silence_periods(cfg.silence_ns);
        let _ = writeln!(
            out,
            "  silence periods (gap > {:.0} ms):",
            ms(cfg.silence_ns)
        );
        if silence.is_empty() {
            let _ = writeln!(out, "    none");
        } else {
            let mut rows: Vec<_> = silence.iter().collect();
            rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
            let shown = rows.len().min(cfg.max_table_rows);
            let _ = writeln!(
                out,
                "    {:<24} {:>6} {:>12} {:>12}",
                "flow", "count", "longest ms", "total ms"
            );
            for (flow, s) in &rows[..shown] {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>6} {:>12.1} {:>12.1}",
                    flow,
                    s.count,
                    ms(s.longest_ns),
                    ms(s.total_ns)
                );
            }
            if rows.len() > shown {
                let _ = writeln!(out, "    … and {} more flows", rows.len() - shown);
            }
        }
        let timeline = self.jain_timeline(cfg.window_ns);
        if !timeline.is_empty() {
            let _ = writeln!(
                out,
                "  Jain fairness timeline ({:.0} ms windows of delivered bytes):",
                ms(cfg.window_ns)
            );
            let _ = writeln!(
                out,
                "    {:>10} {:>7} {:>7}  0 ........ 1",
                "t ms", "jain", "flows"
            );
            for (end, jain, flows) in &timeline {
                match jain {
                    Some(j) => {
                        let bar = "#".repeat((j * 12.0).round() as usize);
                        let _ =
                            writeln!(out, "    {:>10.0} {:>7.3} {:>7}  {bar}", ms(*end), j, flows);
                    }
                    None => {
                        let _ = writeln!(out, "    {:>10.0} {:>7} {:>7}", ms(*end), "-", 0);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump() -> String {
        [
            r#"{"record":"meta","schema":"taq-trace-v1","spans_started":4}"#,
            r#"{"record":"trip","reason":"flow-silence","flow":"1:10->2:80","at_ns":9000000000,"gap_ns":4000000000}"#,
            r#"{"record":"span","packet":1,"flow":"1:10->2:80","link":0,"bytes":500,"class":"Normal","arrive_ns":0,"depth":0,"transmit_ns":100,"outcome":"delivered","latency_ns":1000000,"end_ns":1000000}"#,
            r#"{"record":"span","packet":2,"flow":"1:10->2:80","link":0,"bytes":500,"arrive_ns":2000000,"depth":1,"outcome":"delivered","latency_ns":3000000,"end_ns":5000000}"#,
            r#"{"record":"span","packet":3,"flow":"1:11->2:80","link":0,"bytes":500,"arrive_ns":2500000,"depth":2,"outcome":"delivered","latency_ns":2000000,"end_ns":4500000}"#,
            r#"{"record":"span","packet":4,"flow":"1:10->2:80","link":0,"bytes":500,"arrive_ns":9000000000,"depth":0,"outcome":"dropped","stage":4,"end_ns":9000000000}"#,
            r#"{"record":"series_header","window_ns":1000000000,"columns":["active_flows","delivered_pkts"]}"#,
            r#"{"record":"series_row","t_ns":1000000000,"values":[2,3]}"#,
            "not json at all",
        ]
        .join("\n")
    }

    #[test]
    fn parses_spans_trip_and_series() {
        let report = TraceReport::parse(&dump());
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.skipped_lines, 1);
        assert_eq!(report.trip.as_ref().unwrap().reason, "flow-silence");
        assert_eq!(report.series_columns.len(), 2);
        assert_eq!(report.series_rows, vec![(1_000_000_000, vec![2, 3])]);
        assert_eq!(report.spans[3].stage, Some(4));
    }

    #[test]
    fn latency_percentiles_are_exact() {
        let report = TraceReport::parse(&dump());
        let latency = report.latency_by_flow();
        let s = &latency["1:10->2:80"];
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, 1_000_000);
        assert_eq!(s.max, 3_000_000);
        assert_eq!(latency["1:11->2:80"].count, 1);
    }

    #[test]
    fn silence_detects_the_gap() {
        let report = TraceReport::parse(&dump());
        // Flow 1:10->2:80 goes quiet from 5 ms to 9000 ms.
        let silence = report.silence_periods(1_000_000_000);
        let s = &silence["1:10->2:80"];
        assert_eq!(s.count, 1);
        assert_eq!(s.longest_ns, 9_000_000_000 - 5_000_000);
        assert!(!silence.contains_key("1:11->2:80"));
    }

    #[test]
    fn jain_timeline_scores_windows() {
        let report = TraceReport::parse(&dump());
        let timeline = report.jain_timeline(1_000_000_000);
        // All three deliveries land in window 0 (the dropped span at
        // t=9 s contributes nothing, so the horizon stops at 5 ms):
        // two flows, 1000 vs 500 bytes ->
        // jain = 1500^2 / (2 * (1000^2 + 500^2)) = 0.9.
        assert_eq!(timeline.len(), 1);
        let (_, jain, flows) = timeline[0];
        assert_eq!(flows, 2);
        assert!((jain.unwrap() - 0.9).abs() < 1e-9);
        let rendered = report.render(&ReportConfig::default());
        assert!(rendered.contains("TRIP: flow-silence"));
        assert!(rendered.contains("per-flow delivery latency"));
        assert!(rendered.contains("silence periods"));
        assert!(rendered.contains("Jain fairness timeline"));
    }
}
