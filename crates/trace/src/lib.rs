//! `taq-trace`: deterministic packet-lifecycle tracing for the TAQ
//! reproduction.
//!
//! The paper's claim is *predictability* — TAQ is supposed to remove
//! the long per-flow silences and short-term unfairness that aggregate
//! statistics hide. Aggregates cannot answer "why did flow X stall for
//! 9 s at t=41 s"; a causal per-packet record can. This crate layers
//! that record on the existing telemetry hub:
//!
//! - [`PacketSpan`] — one packet's chain: arrive → classify(class) →
//!   enqueue(depth) → transmit → deliver(latency) | drop(stage) |
//!   fault(kind), assembled by [`TraceCollector`] from the event
//!   stream.
//! - [`FlightRecorder`] — a fixed-capacity ring of recent spans per
//!   link, so the dump near a pathology holds its local history.
//! - [`TripWire`] — live detection of the Figure 1 pathology (a
//!   per-flow silence beyond a threshold), testbed crash-restart
//!   drills, and harness-raised invariant violations; the first trip
//!   freezes a post-mortem JSONL dump.
//! - [`TimeSeries`] — registry-driven periodic sampling (queue depths,
//!   per-class rates, active flows) on a sim-clock cadence, stored
//!   columnar.
//! - [`TraceReport`] — offline analysis of dumps: per-flow latency
//!   percentiles, silence-period distributions, and a sliding-window
//!   Jain fairness timeline.
//!
//! Determinism: the collector is a passive [`taq_telemetry::TelemetrySink`]
//! — it observes the stream and feeds nothing back, so enabling it
//! cannot perturb FlowLog/TaqStats fingerprints; and because the hub's
//! emit closures only run when a sink listens, the disabled path stays
//! at one atomic load per would-be event.

mod collector;
mod recorder;
mod report;
mod series;
mod span;
mod tripwire;

pub use collector::{TraceCollector, TraceConfig};
pub use recorder::FlightRecorder;
pub use report::{LatencyStats, ParsedSpan, ParsedTrip, ReportConfig, SilenceStats, TraceReport};
pub use series::{ColumnId, ColumnKind, TimeSeries};
pub use span::{PacketSpan, SpanOutcome};
pub use tripwire::{TripRecord, TripWire};
