//! Flow-evolution classification (the paper's Figure 9).
//!
//! In each observation window ("epoch" in the figure's terms) a flow is
//! either *active* (transmitted at least one data packet over the
//! bottleneck) or *silent*. Transitions between consecutive windows
//! classify the flow:
//!
//! - **Maintained** — active → active: continuous progress;
//! - **Dropped** — active → silent: just went quiet (timeout after a
//!   drop);
//! - **Arriving** — silent → active: came back from silence;
//! - **Stalled** — silent → silent: still stuck (repetitive timeouts).
//!
//! Flows are counted from the moment they are first seen until they are
//! explicitly marked finished (a finished flow's silence is not a
//! stall).

use taq_sim::{FlowInterner, FlowKey, LinkId, LinkMonitor, Packet, SimDuration, SimTime};

/// Per-window counts of the four evolution categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvolutionCounts {
    /// Active in both the previous and this window.
    pub maintained: usize,
    /// Active previously, silent now.
    pub dropped: usize,
    /// Silent previously, active now.
    pub arriving: usize,
    /// Silent in both.
    pub stalled: usize,
}

impl EvolutionCounts {
    /// Total classified flows in the window.
    pub fn total(&self) -> usize {
        self.maintained + self.dropped + self.arriving + self.stalled
    }
}

/// Collects per-window activity from bottleneck transmissions and
/// classifies flow evolution.
///
/// Flow keys are interned into dense ids; per-window activity and
/// per-flow lifespans are `Vec`s indexed by id (ids are never released,
/// as every flow stays in the census until marked finished).
#[derive(Debug)]
pub struct EvolutionTracker {
    link: LinkId,
    window: SimDuration,
    interner: FlowInterner,
    /// Window index -> per-flow packet counts, indexed by interned id
    /// (zero = silent; windows may be shorter than the flow roster).
    activity: Vec<Vec<u32>>,
    /// First and last window in which each flow may be counted,
    /// indexed by interned id.
    lifespan: Vec<(usize, Option<usize>)>,
}

impl EvolutionTracker {
    /// Creates a tracker for `link` with the given window length
    /// (typically one nominal RTT or one second).
    pub fn new(link: LinkId, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero window");
        EvolutionTracker {
            link,
            window,
            interner: FlowInterner::new(),
            activity: Vec::new(),
            lifespan: Vec::new(),
        }
    }

    fn window_of(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.window.as_nanos()) as usize
    }

    /// Marks a flow finished at `t` (e.g. from its FIN or its
    /// [`taq_tcp::FlowRecord`]); it stops being counted after that
    /// window.
    ///
    /// [`taq_tcp::FlowRecord`]: https://docs.rs/taq-tcp
    pub fn mark_finished(&mut self, flow: FlowKey, t: SimTime) {
        let w = self.window_of(t);
        if let Some(id) = self.interner.get(&flow) {
            self.lifespan[id.index()].1 = Some(w);
        }
    }

    /// Number of complete windows recorded.
    pub fn windows(&self) -> usize {
        self.activity.len()
    }

    /// Classifies evolution for window `w` (needs `w ≥ 1`).
    pub fn counts(&self, w: usize) -> EvolutionCounts {
        let mut c = EvolutionCounts::default();
        if w == 0 || w >= self.activity.len() {
            return c;
        }
        let active_in = |window: &Vec<u32>, idx: usize| window.get(idx).is_some_and(|&c| c > 0);
        for (idx, &(first, last)) in self.lifespan.iter().enumerate() {
            if first >= w {
                continue; // Not yet born at the previous window.
            }
            if let Some(end) = last {
                if end < w {
                    continue; // Finished before this window.
                }
            }
            let was = active_in(&self.activity[w - 1], idx);
            let is = active_in(&self.activity[w], idx);
            match (was, is) {
                (true, true) => c.maintained += 1,
                (true, false) => c.dropped += 1,
                (false, true) => c.arriving += 1,
                (false, false) => c.stalled += 1,
            }
        }
        c
    }

    /// The full evolution series, one entry per window starting at 1.
    pub fn series(&self) -> Vec<EvolutionCounts> {
        (1..self.activity.len()).map(|w| self.counts(w)).collect()
    }
}

impl LinkMonitor for EvolutionTracker {
    fn on_transmit(&mut self, link: LinkId, pkt: &Packet, now: SimTime) {
        if link != self.link || !pkt.is_data() {
            return;
        }
        let w = self.window_of(now);
        while self.activity.len() <= w {
            self.activity.push(Vec::new());
        }
        let (id, fresh) = self.interner.intern(pkt.flow);
        if fresh {
            debug_assert_eq!(
                id.index(),
                self.lifespan.len(),
                "monitors never release ids"
            );
            self.lifespan.push((w, None));
        }
        let window = &mut self.activity[w];
        if window.len() <= id.index() {
            window.resize(id.index() + 1, 0);
        }
        window[id.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_sim::{NodeId, PacketBuilder};

    fn pkt(port: u16) -> Packet {
        PacketBuilder::new(FlowKey {
            src: NodeId(0),
            src_port: 80,
            dst: NodeId(1),
            dst_port: port,
        })
        .payload(460)
        .build()
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tracker() -> EvolutionTracker {
        EvolutionTracker::new(LinkId(0), SimDuration::from_secs(1))
    }

    #[test]
    fn classifies_all_four_transitions() {
        let mut t = tracker();
        // Window 0: flows 1, 2 active; 3 appears (born) but silent later.
        t.on_transmit(LinkId(0), &pkt(1), at(0));
        t.on_transmit(LinkId(0), &pkt(2), at(0));
        t.on_transmit(LinkId(0), &pkt(3), at(0));
        // Window 1: 1 stays active; 2 goes silent; 3 goes silent; 4 born.
        t.on_transmit(LinkId(0), &pkt(1), at(1));
        t.on_transmit(LinkId(0), &pkt(4), at(1));
        // Window 2: 1 active, 2 returns, 3 still silent, 4 silent.
        t.on_transmit(LinkId(0), &pkt(1), at(2));
        t.on_transmit(LinkId(0), &pkt(2), at(2));

        let w1 = t.counts(1);
        assert_eq!(
            w1,
            EvolutionCounts {
                maintained: 1, // flow 1
                dropped: 2,    // flows 2, 3
                arriving: 0,
                stalled: 0,
            }
        );
        let w2 = t.counts(2);
        assert_eq!(
            w2,
            EvolutionCounts {
                maintained: 1, // flow 1
                dropped: 1,    // flow 4
                arriving: 1,   // flow 2
                stalled: 1,    // flow 3
            }
        );
    }

    #[test]
    fn finished_flows_leave_the_census() {
        let mut t = tracker();
        t.on_transmit(LinkId(0), &pkt(1), at(0));
        t.on_transmit(LinkId(0), &pkt(2), at(0));
        t.on_transmit(LinkId(0), &pkt(1), at(1));
        t.on_transmit(LinkId(0), &pkt(2), at(1));
        t.mark_finished(pkt(2).flow, at(1));
        // Window 2: only flow 1 remains countable.
        t.on_transmit(LinkId(0), &pkt(1), at(2));
        let w2 = t.counts(2);
        assert_eq!(w2.total(), 1);
        assert_eq!(w2.maintained, 1);
        assert_eq!(w2.stalled, 0, "finished flow is not a stall");
    }

    #[test]
    fn stalled_persists_across_windows() {
        let mut t = tracker();
        t.on_transmit(LinkId(0), &pkt(1), at(0));
        // Keep the clock moving with another flow.
        for s in 0..5 {
            t.on_transmit(LinkId(0), &pkt(9), at(s));
        }
        assert_eq!(t.counts(1).dropped, 1);
        assert_eq!(t.counts(2).stalled, 1);
        assert_eq!(t.counts(3).stalled, 1);
        assert_eq!(t.counts(4).stalled, 1);
    }

    #[test]
    fn series_length_matches_windows() {
        let mut t = tracker();
        for s in 0..10 {
            t.on_transmit(LinkId(0), &pkt(1), at(s));
        }
        assert_eq!(t.windows(), 10);
        assert_eq!(t.series().len(), 9);
        assert!(t.series().iter().all(|c| c.maintained == 1));
    }

    #[test]
    fn out_of_range_window_is_empty() {
        let t = tracker();
        assert_eq!(t.counts(0), EvolutionCounts::default());
        assert_eq!(t.counts(99), EvolutionCounts::default());
    }
}
