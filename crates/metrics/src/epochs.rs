//! Per-flow packets-per-epoch sampling, for validating the Markov model
//! (the paper's Figure 6).
//!
//! The model's stationary distribution is over "packets sent per epoch"
//! (an epoch being one RTT). This collector divides time into
//! fixed-length epochs per flow (anchored at the flow's first packet so
//! epoch boundaries align with its own round trips), counts data-packet
//! transmissions over the bottleneck in each epoch, and reports the
//! empirical distribution of counts — directly comparable to
//! `taq_model::PartialModel::n_sent_distribution`.

use taq_sim::{FlowInterner, LinkId, LinkMonitor, Packet, SimDuration, SimTime};

/// Collects per-flow epoch activity histograms.
///
/// Flow keys are interned into dense ids at the edge (one Fx hash per
/// data packet); the per-flow windows live in a `Vec` indexed by id.
/// Monitors never release ids — every flow ever seen stays in the final
/// census.
#[derive(Debug)]
pub struct EpochActivity {
    link: LinkId,
    epoch: SimDuration,
    max_count: usize,
    interner: FlowInterner,
    /// Per flow (indexed by interned id): (first packet time, last seen
    /// epoch index, count in that epoch, histogram of closed-epoch
    /// counts).
    flows: Vec<FlowEpochs>,
}

#[derive(Debug)]
struct FlowEpochs {
    anchor: SimTime,
    current_epoch: u64,
    current_count: usize,
    histogram: Vec<u64>,
    /// Unclamped lifetime data-packet count (fairness numerator).
    total: u64,
}

impl EpochActivity {
    /// Creates a collector for `link` with the given epoch length;
    /// counts above `max_count` are clamped into the last bucket
    /// (the paper's Wmax).
    pub fn new(link: LinkId, epoch: SimDuration, max_count: usize) -> Self {
        assert!(!epoch.is_zero(), "zero epoch");
        assert!(max_count >= 1, "need at least one bucket");
        EpochActivity {
            link,
            epoch,
            max_count,
            interner: FlowInterner::new(),
            flows: Vec::new(),
        }
    }

    /// Closes every flow's window up to `end` (accounting trailing
    /// silent epochs) and returns the aggregate distribution of packets
    /// per epoch, normalized; index `n` is "n packets sent", clamped at
    /// `max_count`.
    pub fn distribution(&mut self, end: SimTime) -> Vec<f64> {
        let mut totals = vec![0u64; self.max_count + 1];
        for fe in self.flows.iter_mut() {
            let final_epoch = end.saturating_since(fe.anchor).as_nanos() / self.epoch.as_nanos();
            while fe.current_epoch < final_epoch {
                let bucket = fe.current_count.min(self.max_count);
                fe.histogram[bucket] += 1;
                fe.current_count = 0;
                fe.current_epoch += 1;
            }
            for (n, c) in fe.histogram.iter().enumerate() {
                totals[n] += c;
            }
        }
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return vec![0.0; self.max_count + 1];
        }
        totals.iter().map(|&c| c as f64 / sum as f64).collect()
    }

    /// Fraction of closed epochs in which a flow sent at most one
    /// packet — the sim-side counterpart of the model's timeout mass
    /// (silent waits plus single-packet timeout retransmits). Closes
    /// windows up to `end` like [`EpochActivity::distribution`].
    pub fn timeout_fraction(&mut self, end: SimTime) -> f64 {
        let d = self.distribution(end);
        d.first().copied().unwrap_or(0.0) + d.get(1).copied().unwrap_or(0.0)
    }

    /// Total data packets per flow over the whole run (unclamped), in
    /// interning order — the allocation vector for a Jain index.
    pub fn per_flow_totals(&self) -> Vec<u64> {
        self.flows.iter().map(|fe| fe.total).collect()
    }

    /// Number of flows observed.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

impl LinkMonitor for EpochActivity {
    fn on_transmit(&mut self, link: LinkId, pkt: &Packet, now: SimTime) {
        if link != self.link || !pkt.is_data() {
            return;
        }
        let epoch_len = self.epoch;
        let max = self.max_count;
        let (id, fresh) = self.interner.intern(pkt.flow);
        if fresh {
            debug_assert_eq!(id.index(), self.flows.len(), "monitors never release ids");
            self.flows.push(FlowEpochs {
                anchor: now,
                current_epoch: 0,
                current_count: 0,
                histogram: vec![0; max + 1],
                total: 0,
            });
        }
        let fe = &mut self.flows[id.index()];
        let idx = now.saturating_since(fe.anchor).as_nanos() / epoch_len.as_nanos();
        while fe.current_epoch < idx {
            let bucket = fe.current_count.min(max);
            fe.histogram[bucket] += 1;
            fe.current_count = 0;
            fe.current_epoch += 1;
        }
        fe.current_count += 1;
        fe.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_sim::{FlowKey, NodeId, PacketBuilder};

    fn pkt(port: u16) -> Packet {
        PacketBuilder::new(FlowKey {
            src: NodeId(0),
            src_port: 80,
            dst: NodeId(1),
            dst_port: port,
        })
        .payload(460)
        .build()
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn counts_packets_per_epoch() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 6);
        // Epoch 0: 2 packets; epoch 1: silent; epoch 2: 1 packet.
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(0));
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(50));
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(250));
        let d = ea.distribution(at_ms(300));
        // Three closed epochs: counts 2, 0, 1.
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ea.flow_count(), 1);
    }

    #[test]
    fn counts_clamped_at_max() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 3);
        for i in 0..7 {
            ea.on_transmit(LinkId(0), &pkt(1), at_ms(i * 10));
        }
        let d = ea.distribution(at_ms(100));
        assert_eq!(d.len(), 4);
        assert!((d[3] - 1.0).abs() < 1e-12, "7 packets clamp to bucket 3");
    }

    #[test]
    fn flows_anchor_independently() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 6);
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(0));
        // Flow 2 starts mid-way; its first epoch is anchored at 130 ms.
        ea.on_transmit(LinkId(0), &pkt(2), at_ms(130));
        ea.on_transmit(LinkId(0), &pkt(2), at_ms(140));
        let d = ea.distribution(at_ms(230));
        // Flow 1: epochs [0,100) = 1 pkt, [100,200) = 0; flow 2:
        // [130,230) = 2 pkts. Counts: {1:1, 0:1, 2:1}.
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_flow_totals_are_unclamped() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 3);
        for i in 0..7 {
            ea.on_transmit(LinkId(0), &pkt(1), at_ms(i * 10));
        }
        ea.on_transmit(LinkId(0), &pkt(2), at_ms(500));
        assert_eq!(ea.per_flow_totals(), vec![7, 1]);
    }

    #[test]
    fn timeout_fraction_counts_silent_and_single_epochs() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 6);
        // Epoch 0: 3 packets; epoch 1: silent; epoch 2: 1 packet;
        // epoch 3: 2 packets. Timeout-like epochs: 2 of 4.
        for t in [0, 10, 20, 250] {
            ea.on_transmit(LinkId(0), &pkt(1), at_ms(t));
        }
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(310));
        ea.on_transmit(LinkId(0), &pkt(1), at_ms(320));
        assert!((ea.timeout_fraction(at_ms(400)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zeros() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 6);
        let d = ea.distribution(at_ms(1_000));
        assert_eq!(d, vec![0.0; 7]);
    }

    #[test]
    fn acks_ignored() {
        let mut ea = EpochActivity::new(LinkId(0), SimDuration::from_millis(100), 6);
        let mut ack = pkt(1);
        ack.payload_len = 0;
        ea.on_transmit(LinkId(0), &ack, at_ms(0));
        assert_eq!(ea.flow_count(), 0);
    }
}
