//! Distribution summaries: CDFs, percentiles, and logarithmic size
//! buckets (the presentation devices of the paper's Figures 1 and 12).

/// An empirical distribution over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Builds from samples (non-finite values are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN or infinite.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "non-finite sample in distribution"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Distribution { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Fraction of samples ≤ `x` (the empirical CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `(value, cdf)` points for plotting/printing, one per sample,
    /// thinned to at most `max_points` evenly spaced entries.
    pub fn cdf_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || max_points == 0 {
            return Vec::new();
        }
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// Summary row for one logarithmic bucket, mirroring Figure 1's
/// plotted values.
#[derive(Debug, Clone)]
pub struct BucketSummary {
    /// Inclusive lower edge of the bucket (e.g. object size in bytes).
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Number of samples in the bucket.
    pub count: usize,
    /// 10th percentile of the bucketed metric.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// Buckets `(key, value)` pairs into logarithmic key ranges and
/// summarises the values per bucket — e.g. key = object size, value =
/// download time, `per_decade = 4` buckets per factor of 10.
pub fn log_bucket_summary(
    pairs: &[(f64, f64)],
    per_decade: u32,
    min_count: usize,
) -> Vec<BucketSummary> {
    assert!(per_decade > 0, "need at least one bucket per decade");
    let mut buckets: std::collections::BTreeMap<i64, Vec<f64>> = std::collections::BTreeMap::new();
    for &(key, value) in pairs {
        if key <= 0.0 {
            continue;
        }
        let idx = (key.log10() * f64::from(per_decade)).floor() as i64;
        buckets.entry(idx).or_default().push(value);
    }
    buckets
        .into_iter()
        .filter(|(_, vs)| vs.len() >= min_count)
        .map(|(idx, vs)| {
            let d = Distribution::from_samples(vs);
            let lo = 10f64.powf(idx as f64 / f64::from(per_decade));
            let hi = 10f64.powf((idx + 1) as f64 / f64::from(per_decade));
            BucketSummary {
                lo,
                hi,
                count: d.len(),
                p10: d.quantile(0.1).expect("non-empty bucket"),
                p90: d.quantile(0.9).expect("non-empty bucket"),
                min: d.min().expect("non-empty bucket"),
                max: d.max().expect("non-empty bucket"),
                mean: d.mean().expect("non-empty bucket"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_set() {
        let d = Distribution::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(d.quantile(0.1), Some(10.0));
        assert_eq!(d.median(), Some(50.0));
        assert_eq!(d.quantile(0.9), Some(90.0));
        assert_eq!(d.quantile(1.0), Some(100.0));
        assert_eq!(d.quantile(0.0), Some(1.0));
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(100.0));
        assert_eq!(d.mean(), Some(50.5));
    }

    #[test]
    fn empty_distribution_is_graceful() {
        let d = Distribution::default();
        assert!(d.is_empty());
        assert_eq!(d.median(), None);
        assert_eq!(d.cdf(10.0), 0.0);
        assert!(d.cdf_points(10).is_empty());
    }

    #[test]
    fn cdf_is_monotone_step() {
        let d = Distribution::from_samples(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(2.0), 0.75);
        assert_eq!(d.cdf(4.9), 0.75);
        assert_eq!(d.cdf(5.0), 1.0);
    }

    #[test]
    fn cdf_points_thin_but_cover() {
        let d = Distribution::from_samples((0..1_000).map(f64::from).collect());
        let pts = d.cdf_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn log_buckets_group_by_decade_fraction() {
        // Keys 100 and 150 share a bucket at 4/decade (bucket width
        // 10^0.25 ≈ 1.78×); 1000 is elsewhere.
        let pairs = vec![(100.0, 1.0), (150.0, 3.0), (1_000.0, 10.0)];
        let rows = log_bucket_summary(&pairs, 4, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].min, 1.0);
        assert_eq!(rows[0].max, 3.0);
        assert_eq!(rows[0].mean, 2.0);
        assert_eq!(rows[1].count, 1);
        assert!(rows[1].lo <= 1_000.0 && 1_000.0 < rows[1].hi);
    }

    #[test]
    fn log_buckets_respect_min_count() {
        let pairs = vec![(10.0, 1.0), (10_000.0, 2.0), (10_500.0, 3.0)];
        let rows = log_bucket_summary(&pairs, 1, 2);
        assert_eq!(rows.len(), 1, "singleton bucket filtered out");
        assert_eq!(rows[0].count, 2);
    }

    #[test]
    fn nonpositive_keys_skipped() {
        let rows = log_bucket_summary(&[(0.0, 1.0), (-5.0, 2.0)], 4, 1);
        assert!(rows.is_empty());
    }
}
