//! # taq-metrics — evaluation metrics for the TAQ reproduction
//!
//! Implements every measurement device the paper's evaluation uses:
//!
//! - [`jain_index`] and [`SliceThroughput`] — Jain fairness over
//!   configurable time slices (Figures 2, 8, 11), plus the shut-out and
//!   top-share readings of §2.3;
//! - [`EvolutionTracker`] — the Maintained / Dropped / Arriving /
//!   Stalled flow classification of Figure 9;
//! - [`Distribution`] and [`log_bucket_summary`] — CDFs and
//!   log-bucketed percentile summaries (Figures 1 and 12);
//! - [`HangTracker`] — user-perceived hang extraction (§2.3);
//! - [`EpochActivity`] — packets-per-epoch histograms for validating
//!   the Markov model (Figure 6).
//!
//! All collectors implement [`taq_sim::LinkMonitor`], so they attach to
//! a simulation's bottleneck with `sim.add_monitor(...)` and are read
//! back after the run through the typed handle returned by
//! [`taq_sim::shared`].

mod dist;
mod epochs;
mod evolution;
mod hangs;
mod jain;

pub use dist::{log_bucket_summary, BucketSummary, Distribution};
pub use epochs::EpochActivity;
pub use evolution::{EvolutionCounts, EvolutionTracker};
pub use hangs::HangTracker;
pub use jain::{jain_index, SliceThroughput};
