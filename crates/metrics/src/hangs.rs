//! User-perceived hang analysis (paper §2.3).
//!
//! A user with a pool of simultaneous TCP connections perceives a hang
//! when *none* of the pool's connections delivers any data for a while.
//! This module extracts hang durations from per-user delivery
//! timestamps, observed as bottleneck transmissions toward the user's
//! node (propagation shifts every event by the same constant, so gap
//! lengths are unaffected).

use std::collections::HashMap;
use taq_sim::{LinkId, LinkMonitor, NodeId, Packet, SimDuration, SimTime};

/// Records, per destination node (user), the times data was delivered,
/// and computes per-user gap statistics.
#[derive(Debug)]
pub struct HangTracker {
    link: LinkId,
    deliveries: HashMap<NodeId, Vec<SimTime>>,
    start: SimTime,
    end: SimTime,
}

impl HangTracker {
    /// Creates a tracker observing `link`, analysing the period
    /// `[start, end]` (gaps at the boundaries count).
    pub fn new(link: LinkId, start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "inverted analysis window");
        HangTracker {
            link,
            deliveries: HashMap::new(),
            start,
            end,
        }
    }

    /// Users observed.
    pub fn users(&self) -> usize {
        self.deliveries.len()
    }

    /// All silent gaps for one user within the analysis window,
    /// including the leading gap (start → first delivery) and trailing
    /// gap (last delivery → end).
    pub fn gaps(&self, user: NodeId) -> Vec<SimDuration> {
        let Some(times) = self.deliveries.get(&user) else {
            return vec![self.end.saturating_since(self.start)];
        };
        let mut gaps = Vec::with_capacity(times.len() + 1);
        let mut prev = self.start;
        for &t in times {
            if t < self.start || t > self.end {
                continue;
            }
            gaps.push(t.saturating_since(prev));
            prev = t;
        }
        gaps.push(self.end.saturating_since(prev));
        gaps
    }

    /// The longest hang each user experienced.
    pub fn max_hang_per_user(&self) -> HashMap<NodeId, SimDuration> {
        self.deliveries
            .keys()
            .map(|&u| {
                let max = self.gaps(u).into_iter().max().unwrap_or(SimDuration::ZERO);
                (u, max)
            })
            .collect()
    }

    /// Fraction of users whose longest hang meets or exceeds
    /// `threshold`.
    pub fn fraction_with_hang(&self, threshold: SimDuration) -> f64 {
        let per_user = self.max_hang_per_user();
        if per_user.is_empty() {
            return 0.0;
        }
        let hit = per_user.values().filter(|&&h| h >= threshold).count();
        hit as f64 / per_user.len() as f64
    }
}

impl LinkMonitor for HangTracker {
    fn on_transmit(&mut self, link: LinkId, pkt: &Packet, now: SimTime) {
        if link != self.link || !pkt.is_data() {
            return;
        }
        self.deliveries.entry(pkt.flow.dst).or_default().push(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_sim::{FlowKey, PacketBuilder};

    fn pkt(user: u32) -> Packet {
        PacketBuilder::new(FlowKey {
            src: NodeId(0),
            src_port: 80,
            dst: NodeId(user),
            dst_port: 10_000,
        })
        .payload(460)
        .build()
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tracker() -> HangTracker {
        HangTracker::new(LinkId(0), at(0), at(100))
    }

    #[test]
    fn gaps_include_boundaries() {
        let mut t = tracker();
        t.on_transmit(LinkId(0), &pkt(1), at(10));
        t.on_transmit(LinkId(0), &pkt(1), at(40));
        let gaps = t.gaps(NodeId(1));
        assert_eq!(
            gaps,
            vec![
                SimDuration::from_secs(10),
                SimDuration::from_secs(30),
                SimDuration::from_secs(60),
            ]
        );
    }

    #[test]
    fn pool_of_connections_counts_as_one_user() {
        let mut t = tracker();
        // Two connections of user 1 alternate; no pool-level hang.
        for s in (0..100).step_by(10) {
            let mut p = pkt(1);
            p.flow.dst_port = if s % 20 == 0 { 10_000 } else { 10_001 };
            t.on_transmit(LinkId(0), &p, at(s));
        }
        let max = t.max_hang_per_user();
        assert_eq!(max.len(), 1);
        assert_eq!(max[&NodeId(1)], SimDuration::from_secs(10));
    }

    #[test]
    fn fraction_with_hang_thresholds() {
        let mut t = tracker();
        // User 1 delivers every 10 s: max hang 10 s.
        for s in (0..=100).step_by(10) {
            t.on_transmit(LinkId(0), &pkt(1), at(s));
        }
        // User 2 only delivers at t=0: 100 s hang.
        t.on_transmit(LinkId(0), &pkt(2), at(0));
        assert_eq!(t.users(), 2);
        assert_eq!(t.fraction_with_hang(SimDuration::from_secs(60)), 0.5);
        assert_eq!(t.fraction_with_hang(SimDuration::from_secs(5)), 1.0);
        assert_eq!(
            t.fraction_with_hang(SimDuration::from_secs(200)),
            0.0,
            "nobody hangs past the window"
        );
    }

    #[test]
    fn acks_and_other_links_ignored() {
        let mut t = tracker();
        let mut ack = pkt(1);
        ack.payload_len = 0;
        t.on_transmit(LinkId(0), &ack, at(5));
        t.on_transmit(LinkId(1), &pkt(1), at(5));
        assert_eq!(t.users(), 0);
    }
}
