//! Jain Fairness Index and time-sliced throughput accounting.

use std::collections::HashMap;
use taq_sim::{FlowKey, LinkId, LinkMonitor, Packet, SimDuration, SimTime};

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`,
/// ranging from `1/n` (one party hogs everything) to 1 (exact equality).
///
/// Returns 1.0 for an empty or all-zero set (nothing to be unfair
/// about), matching the convention used when plotting slices in which
/// no flow was active.
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    (sum * sum) / (n as f64 * sum_sq)
}

/// Records per-flow bytes delivered over the bottleneck in fixed time
/// slices, for short- and long-term fairness analysis (the paper's
/// Figures 2, 8 and 11 use 20-second slices).
///
/// Attach as a [`LinkMonitor`] filtered to the bottleneck link; flows
/// are identified by their data-direction key, counting only data
/// packets (ACK-only packets carry no goodput).
#[derive(Debug)]
pub struct SliceThroughput {
    link: LinkId,
    slice_len: SimDuration,
    /// `slices[i][flow]` = wire bytes in slice `i`.
    slices: Vec<HashMap<FlowKey, u64>>,
}

impl SliceThroughput {
    /// Creates a recorder for `link` with the given slice length.
    pub fn new(link: LinkId, slice_len: SimDuration) -> Self {
        assert!(!slice_len.is_zero(), "zero slice length");
        SliceThroughput {
            link,
            slice_len,
            slices: Vec::new(),
        }
    }

    /// Number of slices with any recorded traffic history.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Per-flow byte totals in slice `i`.
    pub fn slice(&self, i: usize) -> Option<&HashMap<FlowKey, u64>> {
        self.slices.get(i)
    }

    /// Jain index of one slice across `expected_flows` flows: flows that
    /// transmitted nothing in the slice count as zero allocations, which
    /// is exactly the short-term-unfairness signal (shut-out flows).
    pub fn slice_jain(&self, i: usize, expected_flows: usize) -> f64 {
        let Some(slice) = self.slices.get(i) else {
            return 1.0;
        };
        let mut allocs: Vec<f64> = slice.values().map(|&b| b as f64).collect();
        while allocs.len() < expected_flows {
            allocs.push(0.0);
        }
        jain_index(&allocs)
    }

    /// Mean Jain index across slices `[from, to)`.
    pub fn mean_jain(&self, from: usize, to: usize, expected_flows: usize) -> f64 {
        let to = to.min(self.slices.len());
        if from >= to {
            return 1.0;
        }
        let sum: f64 = (from..to).map(|i| self.slice_jain(i, expected_flows)).sum();
        sum / (to - from) as f64
    }

    /// Long-term Jain index: totals across the whole run.
    pub fn overall_jain(&self, expected_flows: usize) -> f64 {
        let mut totals: HashMap<FlowKey, u64> = HashMap::new();
        for slice in &self.slices {
            for (k, b) in slice {
                *totals.entry(*k).or_default() += b;
            }
        }
        let mut allocs: Vec<f64> = totals.values().map(|&b| b as f64).collect();
        while allocs.len() < expected_flows {
            allocs.push(0.0);
        }
        jain_index(&allocs)
    }

    /// Fraction of `expected_flows` that transmitted nothing in slice
    /// `i` (the paper's "completely shut down" share).
    pub fn shutout_fraction(&self, i: usize, expected_flows: usize) -> f64 {
        if expected_flows == 0 {
            return 0.0;
        }
        let active = self.slices.get(i).map_or(0, |s| s.len());
        (expected_flows.saturating_sub(active)) as f64 / expected_flows as f64
    }

    /// Fraction of link traffic in slice `i` carried by the top
    /// `top_fraction` of `expected_flows` flows (the paper's "~40% of
    /// flows consume >80% of the bandwidth" observation).
    pub fn top_share(&self, i: usize, expected_flows: usize, top_fraction: f64) -> f64 {
        let Some(slice) = self.slices.get(i) else {
            return 0.0;
        };
        let mut bytes: Vec<u64> = slice.values().copied().collect();
        bytes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = bytes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let k = ((expected_flows as f64 * top_fraction).ceil() as usize).min(bytes.len());
        let top: u64 = bytes[..k].iter().sum();
        top as f64 / total as f64
    }
}

impl LinkMonitor for SliceThroughput {
    fn on_transmit(&mut self, link: LinkId, pkt: &Packet, now: SimTime) {
        if link != self.link || !pkt.is_data() {
            return;
        }
        let idx = (now.as_nanos() / self.slice_len.as_nanos()) as usize;
        while self.slices.len() <= idx {
            self.slices.push(HashMap::new());
        }
        *self.slices[idx].entry(pkt.flow).or_default() += u64::from(pkt.wire_len());
    }

    /// Each shard records into an empty replica watching the same link.
    /// A link is owned by exactly one shard, so at most one replica sees
    /// traffic — and even if that ever changed, the merge below is a
    /// commutative per-slice/per-flow byte sum, deterministic regardless
    /// of shard order.
    fn fork_shard(&self) -> Option<Box<dyn LinkMonitor>> {
        Some(Box::new(SliceThroughput::new(self.link, self.slice_len)))
    }

    fn merge_shard(&mut self, fork: Box<dyn LinkMonitor>) {
        let fork = fork
            .as_ref()
            .as_any()
            .downcast_ref::<SliceThroughput>()
            .expect("fork_shard returns a SliceThroughput");
        while self.slices.len() < fork.slices.len() {
            self.slices.push(HashMap::new());
        }
        for (i, slice) in fork.slices.iter().enumerate() {
            for (flow, bytes) in slice {
                *self.slices[i].entry(*flow).or_default() += bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq_sim::{NodeId, PacketBuilder};

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog out of four: 1/n.
        assert!((jain_index(&[8.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Known value: (1+2+3)²/(3·14) = 36/42.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    fn pkt(port: u16, payload: u32) -> Packet {
        PacketBuilder::new(FlowKey {
            src: NodeId(0),
            src_port: 80,
            dst: NodeId(1),
            dst_port: port,
        })
        .payload(payload)
        .build()
    }

    #[test]
    fn slices_accumulate_per_flow() {
        let mut st = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        st.on_transmit(LinkId(0), &pkt(1, 460), SimTime::from_secs(1));
        st.on_transmit(LinkId(0), &pkt(1, 460), SimTime::from_secs(2));
        st.on_transmit(LinkId(0), &pkt(2, 460), SimTime::from_secs(3));
        st.on_transmit(LinkId(0), &pkt(1, 460), SimTime::from_secs(15));
        // Wrong link and pure ACKs are ignored.
        st.on_transmit(LinkId(1), &pkt(1, 460), SimTime::from_secs(4));
        st.on_transmit(LinkId(0), &pkt(1, 0), SimTime::from_secs(4));
        assert_eq!(st.slice_count(), 2);
        let s0 = st.slice(0).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0.values().sum::<u64>(), 3 * 500);
    }

    #[test]
    fn slice_jain_counts_silent_flows() {
        let mut st = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        st.on_transmit(LinkId(0), &pkt(1, 460), SimTime::from_secs(1));
        // Two flows expected, one silent: JFI = (x)²/(2x²) = 0.5.
        assert!((st.slice_jain(0, 2) - 0.5).abs() < 1e-12);
        // Both active and equal: 1.
        st.on_transmit(LinkId(0), &pkt(2, 460), SimTime::from_secs(2));
        assert!((st.slice_jain(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overall_vs_short_term() {
        let mut st = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        // Flows alternate slices: long-term fair, short-term maximally
        // unfair.
        for s in 0..10u64 {
            let port = if s % 2 == 0 { 1 } else { 2 };
            st.on_transmit(LinkId(0), &pkt(port, 460), SimTime::from_secs(s * 10 + 1));
        }
        assert!((st.overall_jain(2) - 1.0).abs() < 1e-12);
        assert!((st.mean_jain(0, 10, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fork_merge_matches_serial_observation() {
        let mut serial = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        let mut root = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        let mut fork = root.fork_shard().expect("sliceable");
        for s in 0..3u64 {
            let p = pkt(1, 460);
            serial.on_transmit(LinkId(0), &p, SimTime::from_secs(s * 10 + 1));
            fork.on_transmit(LinkId(0), &p, SimTime::from_secs(s * 10 + 1));
        }
        root.merge_shard(fork);
        assert_eq!(root.slice_count(), serial.slice_count());
        for i in 0..serial.slice_count() {
            assert_eq!(root.slice(i), serial.slice(i));
        }
    }

    #[test]
    fn shutout_and_top_share() {
        let mut st = SliceThroughput::new(LinkId(0), SimDuration::from_secs(10));
        for _ in 0..8 {
            st.on_transmit(LinkId(0), &pkt(1, 460), SimTime::from_secs(1));
        }
        st.on_transmit(LinkId(0), &pkt(2, 460), SimTime::from_secs(1));
        // 10 expected flows, 2 active.
        assert!((st.shutout_fraction(0, 10) - 0.8).abs() < 1e-12);
        // Top 10% of 10 flows = 1 flow = 8/9 of the traffic.
        assert!((st.top_share(0, 10, 0.1) - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(st.top_share(5, 10, 0.1), 0.0, "missing slice is zero");
    }
}
