//! Ring-session conformance: the lock-free per-shard telemetry rings
//! are a *transport*, never an observable. A run whose events travel
//! through [`RingSession`] rings — single-ring live replay, inline
//! producer drains, or multi-ring buffered sort-merge — must leave the
//! sink with byte-identical JSONL to the same run emitting straight
//! into the mutex hub.
//!
//! The fixture is a small access tree with TAQ on the bottleneck, a
//! [`TelemetryBridge`] streaming every per-packet link event, and TAQ
//! state telemetry attached, so the stream mixes bridge events, qdisc
//! flow-lifecycle events and `Delivered` records — everything the
//! attached-sink benchmark configuration emits.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use taq_sim::{Bandwidth, SimDuration, SimTime, TelemetryBridge};
use taq_telemetry::{ring, shared_sink, spawn_collector, JsonlSink, RingSession, Telemetry};
use taq_workloads::{PipeSpec, QdiscSpec, TopologySpec};

/// `Write` target the test keeps a handle to after the sink is erased
/// into the telemetry hub.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// How telemetry leaves the producer threads in one run.
#[derive(Clone, Copy, Debug)]
enum Transport {
    /// No ring session: every emission takes the mutex-hub slow path.
    /// This is the reference ordering the ring paths must reproduce.
    Hub,
    /// Single ring drained by the producer itself in amortized swaths
    /// ([`RingSession::install_inline`], the single-core bench mode).
    Inline,
    /// One ring per shard drained by a collector thread; multi-ring
    /// sessions buffer and sort-merge at
    /// [`taq_telemetry::RingCollector::stop`].
    Threaded,
}

/// A fixed 4-router spanning tree: TAQ on the shared uplink, SFQ and
/// DropTail on the leaves, enough cross traffic that the TAQ pipe
/// actually queues and drops.
fn fixture() -> TopologySpec {
    let uplink = Bandwidth::from_kbps(600);
    let leaf = Bandwidth::from_kbps(800);
    let buf = |rate: Bandwidth| rate.packets_per(SimDuration::from_millis(200), 500).max(8);
    TopologySpec::new(
        4,
        vec![
            PipeSpec::new(
                0,
                1,
                uplink,
                SimDuration::from_millis(24),
                QdiscSpec::taq(buf(uplink)),
            ),
            PipeSpec::new(
                1,
                2,
                leaf,
                SimDuration::from_millis(10),
                QdiscSpec::Sfq {
                    buffer_pkts: buf(leaf),
                },
            ),
            PipeSpec::new(
                1,
                3,
                leaf,
                SimDuration::from_millis(10),
                QdiscSpec::DropTail {
                    buffer_pkts: buf(leaf),
                },
            ),
        ],
    )
}

/// Runs the fixture at `shards` with telemetry routed via `transport`
/// and returns the raw JSONL the sink wrote.
fn run_case(shards: u32, transport: Transport) -> Vec<u8> {
    let telemetry = Telemetry::new();
    let buf = SharedBuf::default();
    let (_sink, erased) = shared_sink(JsonlSink::new(buf.clone()));
    telemetry.add_shared_sink(erased);

    let spec = fixture().shards(shards).telemetry(telemetry.clone());
    let mut sc = spec.build(11);
    for state in sc.taq_states.iter().flatten() {
        state.lock().unwrap().attach_telemetry(telemetry.clone());
    }
    sc.sim
        .add_monitor(Box::new(TelemetryBridge::new(telemetry.clone())));
    for router in 1..4 {
        sc.add_bulk_clients_at(router, 2, 120_000, SimDuration::from_secs(1));
    }

    let horizon = SimTime::from_secs(10);
    match transport {
        Transport::Hub => sc.run_until(horizon),
        Transport::Inline => {
            // Tiny capacity on purpose: the run must cross the drain
            // threshold (and the ring-full retry path) many times.
            let session = RingSession::install_inline(&telemetry, 256);
            let collector = spawn_collector(session.set(), telemetry.clone());
            let binding = ring::bind_shard_thread(0);
            sc.run_until(horizon);
            drop(binding);
            collector.stop();
        }
        Transport::Threaded => {
            let session = RingSession::install(&telemetry, shards as usize, 1024);
            let collector = spawn_collector(session.set(), telemetry.clone());
            // The sharded executor binds its own worker threads; a
            // serial run executes on this thread, so bind it here.
            let binding = (shards == 1).then(|| ring::bind_shard_thread(0));
            sc.run_until(horizon);
            drop(binding);
            let report = collector.stop();
            assert_eq!(
                report.overflowed, 0,
                "capacity is sized so this fixture never overflows"
            );
        }
    }
    telemetry.flush();
    let bytes = buf.take();
    assert!(
        bytes.len() > 10_000,
        "fixture emitted suspiciously little telemetry ({} bytes)",
        bytes.len()
    );
    bytes
}

/// Splits a JSONL byte stream into lines for a readable first-diff
/// message when an identity assertion fails.
fn first_diff(a: &[u8], b: &[u8]) -> String {
    let a_lines: Vec<&[u8]> = a.split(|&c| c == b'\n').collect();
    let b_lines: Vec<&[u8]> = b.split(|&c| c == b'\n').collect();
    for (i, (la, lb)) in a_lines.iter().zip(&b_lines).enumerate() {
        if la != lb {
            return format!(
                "line {}: {:?} != {:?}",
                i,
                String::from_utf8_lossy(la),
                String::from_utf8_lossy(lb)
            );
        }
    }
    format!("line counts differ: {} vs {}", a_lines.len(), b_lines.len())
}

#[test]
fn inline_ring_session_is_byte_identical_to_hub() {
    let hub = run_case(1, Transport::Hub);
    let inline = run_case(1, Transport::Inline);
    assert!(
        hub == inline,
        "inline ring output diverged: {}",
        first_diff(&hub, &inline)
    );
}

#[test]
fn single_ring_collector_is_byte_identical_to_hub() {
    let hub = run_case(1, Transport::Hub);
    let ringed = run_case(1, Transport::Threaded);
    assert!(
        hub == ringed,
        "single-ring collector output diverged: {}",
        first_diff(&hub, &ringed)
    );
}

#[test]
fn sharded_ring_merge_is_byte_identical_to_serial_hub() {
    let hub = run_case(1, Transport::Hub);
    for shards in [2u32, 4] {
        let ringed = run_case(shards, Transport::Threaded);
        assert!(
            hub == ringed,
            "{shards}-shard ring merge diverged from serial hub: {}",
            first_diff(&hub, &ringed)
        );
    }
}
