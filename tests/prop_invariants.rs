//! Randomized-property tests on core data-structure invariants: queue
//! conservation across every discipline, metric bounds, model
//! distributions, and RNG ranges.
//!
//! Cases are generated from the repo's own deterministic [`SimRng`]
//! (fixed seeds, fixed case counts) rather than an external
//! property-testing framework, keeping the build dependency-free; a
//! failing case reproduces exactly from its printed seed.

use taq::{QueueClass, TaqConfig, TaqPair};
use taq_metrics::{jain_index, Distribution};
use taq_model::{FullModel, PartialModel};
use taq_queues::{DropTail, Red, RedConfig, Sfq};
use taq_sim::{Bandwidth, FlowKey, NodeId, Packet, PacketBuilder, Qdisc, SimRng, SimTime};

const CASES: u64 = 48;

fn pkt(port: u16, seq: u64, id: u64) -> Packet {
    let mut p = PacketBuilder::new(FlowKey {
        src: NodeId(0),
        src_port: 80,
        dst: NodeId(1),
        dst_port: port,
    })
    .seq(seq)
    .payload(460)
    .build();
    p.id = id;
    p
}

/// A random enqueue/dequeue schedule: (port selector, dequeue?) pairs.
fn ops_schedule(rng: &mut SimRng) -> Vec<(u8, bool)> {
    let len = rng.range_u64(1, 300) as usize;
    (0..len)
        .map(|_| (rng.next_below(256) as u8, rng.chance(0.5)))
        .collect()
}

/// Drives a qdisc with an arbitrary enqueue/dequeue schedule and checks
/// packet conservation: in = out + dropped + still-buffered.
fn conservation(mut q: Box<dyn Qdisc>, ops: &[(u8, bool)], seed: u64) {
    let mut arena = taq_sim::PacketArena::new();
    let (mut enq, mut deq, mut dropped) = (0u64, 0u64, 0u64);
    let mut seq_per_flow = std::collections::HashMap::<u16, u64>::new();
    for (i, &(port_sel, do_deq)) in ops.iter().enumerate() {
        let port = u16::from(port_sel % 7);
        let now = SimTime::from_millis(i as u64 * 3);
        let seq = seq_per_flow.entry(port).or_insert(1);
        let id = arena.insert(pkt(port, *seq, i as u64));
        let outcome = q.enqueue(id, &mut arena, now);
        *seq += 460;
        enq += 1;
        for victim in outcome.dropped {
            arena.remove(victim);
            dropped += 1;
        }
        if do_deq {
            if let Some(out) = q.dequeue(&mut arena, now) {
                arena.remove(out);
                deq += 1;
            }
        }
        #[allow(clippy::len_zero)] // the invariant under test IS is_empty == (len == 0)
        {
            assert_eq!(q.is_empty(), q.len() == 0, "seed {seed}");
        }
        // The arena holds exactly the buffered packets at every step.
        assert_eq!(arena.len(), q.len(), "seed {seed}");
    }
    let buffered = q.len() as u64;
    let mut drained = 0u64;
    while let Some(out) = q.dequeue(&mut arena, SimTime::from_secs(3_600)) {
        arena.remove(out);
        drained += 1;
    }
    assert_eq!(drained, buffered, "seed {seed}");
    assert_eq!(enq, deq + dropped + buffered, "seed {seed}");
    assert_eq!(q.len(), 0, "seed {seed}");
    assert_eq!(q.byte_len(), 0, "seed {seed}");
    assert!(arena.is_empty(), "arena leak, seed {seed}");
}

#[test]
fn droptail_conserves_packets() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let ops = ops_schedule(&mut rng);
        conservation(Box::new(DropTail::with_packets(16)), &ops, seed);
    }
}

#[test]
fn red_conserves_packets() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let ops = ops_schedule(&mut rng);
        let red = Red::new(RedConfig::conventional(16, 0.004), SimRng::new(1));
        conservation(Box::new(red), &ops, seed);
    }
}

#[test]
fn sfq_conserves_packets() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let ops = ops_schedule(&mut rng);
        conservation(Box::new(Sfq::new(64, 16)), &ops, seed);
    }
}

#[test]
fn taq_conserves_packets() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let ops = ops_schedule(&mut rng);
        let mut cfg = TaqConfig::for_link(Bandwidth::from_kbps(600));
        cfg.buffer_pkts = 16;
        cfg.newflow_cap_pkts = 8;
        let pair = TaqPair::new(cfg);
        conservation(Box::new(pair.forward), &ops, seed);
    }
}

/// TAQ never reorders packets within one flow, for any schedule.
#[test]
fn taq_preserves_per_flow_order() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let ops = ops_schedule(&mut rng);
        let mut cfg = TaqConfig::for_link(Bandwidth::from_kbps(600));
        cfg.buffer_pkts = 16;
        cfg.newflow_cap_pkts = 16;
        let pair = TaqPair::new(cfg);
        let mut arena = taq_sim::PacketArena::new();
        let mut q: Box<dyn Qdisc> = Box::new(pair.forward);
        let mut next_id = std::collections::HashMap::<u16, u64>::new();
        let mut last_seen = std::collections::HashMap::<FlowKey, u64>::new();
        let mut check = |p: &Packet| {
            if let Some(prev) = last_seen.insert(p.flow, p.id) {
                assert!(p.id > prev, "flow {} reordered (seed {seed})", p.flow);
            }
        };
        for (i, &(port_sel, do_deq)) in ops.iter().enumerate() {
            let port = u16::from(port_sel % 5);
            let id = {
                let n = next_id.entry(port).or_insert(0);
                *n += 1;
                *n
            };
            let now = SimTime::from_millis(i as u64 * 3);
            // Monotone ids double as sequence numbers for ordering.
            let pid = arena.insert(pkt(port, id * 460, id));
            for victim in q.enqueue(pid, &mut arena, now).dropped {
                arena.remove(victim);
            }
            if do_deq {
                if let Some(out) = q.dequeue(&mut arena, now) {
                    check(&arena.remove(out));
                }
            }
        }
        while let Some(out) = q.dequeue(&mut arena, SimTime::from_secs(3_600)) {
            check(&arena.remove(out));
        }
        assert!(arena.is_empty(), "arena leak, seed {seed}");
    }
}

/// Jain's index is bounded by [1/n, 1], invariant under permutation
/// and positive scaling.
#[test]
fn jain_bounds_and_invariances() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(100 + seed);
        let n = rng.range_u64(1, 64) as usize;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e6)).collect();
        let scale = rng.range_f64(0.001, 1e3);
        let nf = xs.len() as f64;
        let j = jain_index(&xs);
        assert!(j <= 1.0 + 1e-9, "seed {seed}");
        if xs.iter().any(|&x| x > 0.0) {
            assert!(j >= 1.0 / nf - 1e-9, "seed {seed}");
        }
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        assert!((jain_index(&scaled) - j).abs() < 1e-6, "seed {seed}");
        xs.reverse();
        assert!((jain_index(&xs) - j).abs() < 1e-12, "seed {seed}");
    }
}

/// Empirical distributions: quantiles are monotone and within
/// [min, max]; the CDF is a proper distribution function.
#[test]
fn distribution_quantiles_monotone() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(200 + seed);
        let n = rng.range_u64(1, 200) as usize;
        let samples: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let d = Distribution::from_samples(samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut prev = f64::MIN;
        for &q in &qs {
            let v = d.quantile(q).unwrap();
            assert!(v >= prev, "seed {seed}");
            assert!(
                v >= d.min().unwrap() && v <= d.max().unwrap(),
                "seed {seed}"
            );
            prev = v;
        }
        assert!((d.cdf(d.max().unwrap()) - 1.0).abs() < 1e-12, "seed {seed}");
        assert_eq!(d.cdf(d.min().unwrap() - 1.0), 0.0, "seed {seed}");
    }
}

/// Markov model stationary distributions are valid for arbitrary
/// parameters, and the full model is never less silent than the
/// partial one.
#[test]
fn model_distributions_valid() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(300 + seed);
        let p = rng.range_f64(0.01, 0.45);
        let wmax = rng.range_u64(4, 11) as u32;
        let k = rng.range_u64(1, 4) as u32;
        let partial = PartialModel::new(p, wmax);
        let pd = partial.n_sent_distribution();
        assert!((pd.iter().sum::<f64>() - 1.0).abs() < 1e-8, "seed {seed}");
        assert!(pd.iter().all(|&v| v >= -1e-12), "seed {seed}");
        let full = FullModel::new(p, wmax, k);
        let fd = full.n_sent_distribution();
        assert!((fd.iter().sum::<f64>() - 1.0).abs() < 1e-8, "seed {seed}");
        assert!(
            full.silence_mass() + 1e-9 >= partial.silence_mass(),
            "seed {seed}"
        );
    }
}

/// The RNG's bounded draws stay in range, and chance(0)/chance(1)
/// are degenerate.
#[test]
fn rng_ranges() {
    for seed in 0..CASES {
        let mut meta = SimRng::new(400 + seed);
        let lo = meta.range_u64(0, 999);
        let width = meta.range_u64(1, 999);
        let mut rng = SimRng::new(meta.next_u64());
        for _ in 0..100 {
            let x = rng.range_u64(lo, lo + width);
            assert!((lo..=lo + width).contains(&x), "seed {seed}");
            assert!(!rng.chance(0.0), "seed {seed}");
            assert!(rng.chance(1.0), "seed {seed}");
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "seed {seed}");
        }
    }
}

/// TAQ classification is total and stable: every observation maps to
/// exactly one class, and retransmissions repairing our drops always
/// win Recovery.
#[test]
fn classification_is_total() {
    for seed in 0..256 {
        let mut rng = SimRng::new(500 + seed);
        let retx = rng.chance(0.5);
        let repairs = rng.chance(0.5);
        let obs = taq::Observation {
            id: taq_sim::FlowId(0),
            retransmission: retx,
            repairs_our_drop: repairs && retx,
            state: taq::FlowState::Normal,
            silent_epochs: 0,
            is_new: rng.chance(0.5),
            recent_drops: rng.next_below(5) as u32,
            rate_bps: rng.range_f64(0.0, 100_000.0),
            epoch_len: taq_sim::SimDuration::from_millis(200),
            last_normal_at: SimTime::ZERO,
            window_estimate: 0,
            protected: rng.chance(0.5),
            fq_only: false,
        };
        let backlog = rng.next_below(10) as usize;
        let share_pkts = rng.next_below(5) as usize;
        let class = taq::classify(&obs, backlog, share_pkts, 10_000.0);
        if repairs && retx {
            assert_eq!(class, QueueClass::Recovery, "seed {seed}");
        }
        // Exactly one class (total function, no panics) — reaching here
        // suffices.
    }
}
