//! Property-based tests on core data-structure invariants: queue
//! conservation across every discipline, metric bounds, model
//! distributions, and RNG ranges.

use proptest::prelude::*;
use taq::{QueueClass, TaqConfig, TaqPair};
use taq_metrics::{jain_index, Distribution};
use taq_model::{FullModel, PartialModel};
use taq_queues::{DropTail, Red, RedConfig, Sfq};
use taq_sim::{Bandwidth, FlowKey, NodeId, Packet, PacketBuilder, Qdisc, SimRng, SimTime};

fn pkt(port: u16, seq: u64, id: u64) -> Packet {
    let mut p = PacketBuilder::new(FlowKey {
        src: NodeId(0),
        src_port: 80,
        dst: NodeId(1),
        dst_port: port,
    })
    .seq(seq)
    .payload(460)
    .build();
    p.id = id;
    p
}

/// Drives a qdisc with an arbitrary enqueue/dequeue schedule and checks
/// packet conservation: in = out + dropped + still-buffered.
fn conservation(mut q: Box<dyn Qdisc>, ops: &[(u8, bool)]) -> Result<(), TestCaseError> {
    let (mut enq, mut deq, mut dropped) = (0u64, 0u64, 0u64);
    let mut seq_per_flow = std::collections::HashMap::<u16, u64>::new();
    for (i, &(port_sel, do_deq)) in ops.iter().enumerate() {
        let port = u16::from(port_sel % 7);
        let now = SimTime::from_millis(i as u64 * 3);
        let seq = seq_per_flow.entry(port).or_insert(1);
        let outcome = q.enqueue(pkt(port, *seq, i as u64), now);
        *seq += 460;
        enq += 1;
        dropped += outcome.dropped.len() as u64;
        if do_deq && q.dequeue(now).is_some() {
            deq += 1;
        }
        prop_assert_eq!(q.is_empty(), q.len() == 0);
    }
    let buffered = q.len() as u64;
    let mut drained = 0u64;
    while q.dequeue(SimTime::from_secs(3_600)).is_some() {
        drained += 1;
    }
    prop_assert_eq!(drained, buffered);
    prop_assert_eq!(enq, deq + dropped + buffered);
    prop_assert_eq!(q.len(), 0);
    prop_assert_eq!(q.byte_len(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn droptail_conserves_packets(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..300)) {
        conservation(Box::new(DropTail::with_packets(16)), &ops)?;
    }

    #[test]
    fn red_conserves_packets(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..300)) {
        let red = Red::new(RedConfig::conventional(16, 0.004), SimRng::new(1));
        conservation(Box::new(red), &ops)?;
    }

    #[test]
    fn sfq_conserves_packets(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..300)) {
        conservation(Box::new(Sfq::new(64, 16)), &ops)?;
    }

    #[test]
    fn taq_conserves_packets(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..300)) {
        let mut cfg = TaqConfig::for_link(Bandwidth::from_kbps(600));
        cfg.buffer_pkts = 16;
        cfg.newflow_cap_pkts = 8;
        let pair = TaqPair::new(cfg);
        conservation(Box::new(pair.forward), &ops)?;
    }

    /// TAQ never reorders packets within one flow, for any schedule.
    #[test]
    fn taq_preserves_per_flow_order(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..300)) {
        let mut cfg = TaqConfig::for_link(Bandwidth::from_kbps(600));
        cfg.buffer_pkts = 16;
        cfg.newflow_cap_pkts = 16;
        let pair = TaqPair::new(cfg);
        let mut q: Box<dyn Qdisc> = Box::new(pair.forward);
        let mut next_id = std::collections::HashMap::<u16, u64>::new();
        let mut last_seen = std::collections::HashMap::<FlowKey, u64>::new();
        let mut check = |p: &Packet| -> Result<(), TestCaseError> {
            if let Some(prev) = last_seen.insert(p.flow, p.id) {
                prop_assert!(p.id > prev, "flow {} reordered", p.flow);
            }
            Ok(())
        };
        for (i, &(port_sel, do_deq)) in ops.iter().enumerate() {
            let port = u16::from(port_sel % 5);
            let id = {
                let n = next_id.entry(port).or_insert(0);
                *n += 1;
                *n
            };
            let now = SimTime::from_millis(i as u64 * 3);
            // Monotone ids double as sequence numbers for ordering.
            q.enqueue(pkt(port, id * 460, id), now);
            if do_deq {
                if let Some(p) = q.dequeue(now) {
                    check(&p)?;
                }
            }
        }
        while let Some(p) = q.dequeue(SimTime::from_secs(3_600)) {
            check(&p)?;
        }
    }

    /// Jain's index is bounded by [1/n, 1], invariant under permutation
    /// and positive scaling.
    #[test]
    fn jain_bounds_and_invariances(
        mut xs in proptest::collection::vec(0.0f64..1e6, 1..64),
        scale in 0.001f64..1e3,
    ) {
        let n = xs.len() as f64;
        let j = jain_index(&xs);
        prop_assert!(j <= 1.0 + 1e-9);
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9);
        }
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-6);
        xs.reverse();
        prop_assert!((jain_index(&xs) - j).abs() < 1e-12);
    }

    /// Empirical distributions: quantiles are monotone and within
    /// [min, max]; the CDF is a proper distribution function.
    #[test]
    fn distribution_quantiles_monotone(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let d = Distribution::from_samples(samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut prev = f64::MIN;
        for &q in &qs {
            let v = d.quantile(q).unwrap();
            prop_assert!(v >= prev);
            prop_assert!(v >= d.min().unwrap() && v <= d.max().unwrap());
            prev = v;
        }
        prop_assert!((d.cdf(d.max().unwrap()) - 1.0).abs() < 1e-12);
        prop_assert_eq!(d.cdf(d.min().unwrap() - 1.0), 0.0);
    }

    /// Markov model stationary distributions are valid for arbitrary
    /// parameters, and the full model is never less silent than the
    /// partial one.
    #[test]
    fn model_distributions_valid(
        p in 0.01f64..0.45,
        wmax in 4u32..12,
        k in 1u32..5,
    ) {
        let partial = PartialModel::new(p, wmax);
        let pd = partial.n_sent_distribution();
        prop_assert!((pd.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(pd.iter().all(|&v| v >= -1e-12));
        let full = FullModel::new(p, wmax, k);
        let fd = full.n_sent_distribution();
        prop_assert!((fd.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(full.silence_mass() + 1e-9 >= partial.silence_mass());
    }

    /// The RNG's bounded draws stay in range, and chance(0)/chance(1)
    /// are degenerate.
    #[test]
    fn rng_ranges(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let x = rng.range_u64(lo, lo + width);
            prop_assert!((lo..=lo + width).contains(&x));
            prop_assert!(!rng.chance(0.0));
            prop_assert!(rng.chance(1.0));
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// TAQ classification is total and stable: every observation maps to
    /// exactly one class, and retransmissions repairing our drops always
    /// win Recovery.
    #[test]
    fn classification_is_total(
        retx in any::<bool>(),
        repairs in any::<bool>(),
        is_new in any::<bool>(),
        protected in any::<bool>(),
        drops in 0u32..5,
        rate in 0f64..100_000.0,
        backlog in 0usize..10,
        share_pkts in 0usize..5,
    ) {
        let obs = taq::Observation {
            retransmission: retx,
            repairs_our_drop: repairs && retx,
            state: taq::FlowState::Normal,
            silent_epochs: 0,
            is_new,
            recent_drops: drops,
            rate_bps: rate,
            epoch_len: taq_sim::SimDuration::from_millis(200),
            last_normal_at: SimTime::ZERO,
            window_estimate: 0,
            protected,
            fq_only: false,
        };
        let class = taq::classify(&obs, backlog, share_pkts, 10_000.0);
        if repairs && retx {
            prop_assert_eq!(class, QueueClass::Recovery);
        }
        // Exactly one class (total function, no panics) — reaching here
        // suffices.
    }
}
