//! Integration: persistent connections with pipelined requests
//! (HTTP/1.1 keep-alive), end to end over the simulator.

use taq::{FlowState, TaqConfig, TaqPair};
use taq_queues::DropTail;
use taq_sim::{Bandwidth, Dumbbell, DumbbellConfig, SimTime, Simulator};
use taq_tcp::{new_flow_log, ClientHost, Request, ServerHost, TcpConfig};

fn setup(qdisc: Box<dyn taq_sim::Qdisc>) -> (Simulator, Dumbbell, taq_sim::NodeId) {
    let mut sim = Simulator::new(21);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let db = Dumbbell::build_simple(&mut sim, cfg, qdisc);
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    (sim, db, server)
}

#[test]
fn pipelined_objects_complete_in_order_on_one_connection() {
    let (mut sim, db, server) = setup(Box::new(DropTail::with_packets(30)));
    let log = new_flow_log();
    let mut client =
        ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone()).with_pipelining();
    for tag in 0..6 {
        client.push_request(Request { tag, bytes: 8_000 });
    }
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(120));

    let log = log.lock().unwrap();
    let done: Vec<_> = log
        .records
        .iter()
        .filter(|r| r.completed_at.is_some())
        .collect();
    assert_eq!(done.len(), 6, "all pipelined objects complete");
    // One connection: every record shares the client port.
    let ports: std::collections::HashSet<u16> = done.iter().map(|r| r.client_port).collect();
    assert_eq!(ports.len(), 1, "a single keep-alive connection: {ports:?}");
    // In-order completion by tag.
    let mut tags: Vec<u64> = done.iter().map(|r| r.tag).collect();
    let sorted = {
        let mut t = tags.clone();
        t.sort_unstable();
        t
    };
    assert_eq!(tags, sorted, "pipelined objects finish in request order");
    tags.dedup();
    assert_eq!(tags.len(), 6);
    // The server accepted exactly one connection.
    let srv = sim.agent::<ServerHost>(server).unwrap();
    assert_eq!(srv.accepted, 1);
}

#[test]
fn scheduled_requests_reuse_idle_keepalive_connections() {
    let (mut sim, db, server) = setup(Box::new(DropTail::with_packets(30)));
    let log = new_flow_log();
    let mut client =
        ClientHost::new(TcpConfig::default(), server, 80, 2, log.clone()).with_pipelining();
    client.push_request(Request {
        tag: 0,
        bytes: 5_000,
    });
    // A second burst arrives long after the first object finished: the
    // idle keep-alive connection must pick it up without a new SYN.
    client.schedule_request(
        SimTime::from_secs(30),
        Request {
            tag: 1,
            bytes: 5_000,
        },
    );
    client.schedule_request(
        SimTime::from_secs(30),
        Request {
            tag: 2,
            bytes: 5_000,
        },
    );
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(120));

    let log = log.lock().unwrap();
    let done = log
        .records
        .iter()
        .filter(|r| r.completed_at.is_some())
        .count();
    assert_eq!(done, 3, "burst after idle completes");
    let srv = sim.agent::<ServerHost>(server).unwrap();
    // Reuse means at most 2 connections ever (the pool limit), not 3.
    assert!(
        srv.accepted <= 2,
        "idle connection reused: {}",
        srv.accepted
    );
    // The later objects completed after their scheduled time.
    let r1 = log.records.iter().find(|r| r.tag == 1).unwrap();
    assert!(r1.completed_at.unwrap() >= SimTime::from_secs(30));
}

#[test]
fn idle_keepalive_connection_tracks_as_dummy_silence_at_taq() {
    // The traffic pattern pipelining creates — an established flow that
    // simply has nothing to send — is exactly what TAQ's DummySilence
    // state exists to distinguish from a timeout.
    let mut sim = Simulator::new(33);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let pair = TaqPair::new(TaqConfig::for_link(Bandwidth::from_kbps(600)));
    let state = pair.state.clone();
    let db = Dumbbell::build(
        &mut sim,
        cfg,
        Box::new(pair.forward),
        Box::new(pair.reverse),
    );
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    let log = new_flow_log();
    let mut client =
        ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone()).with_pipelining();
    client.push_request(Request {
        tag: 0,
        bytes: 20_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    // Run past completion so idle epochs accumulate (but well short of
    // the tracker's GC horizon), then roll the tracker's clock forward.
    sim.run_until(SimTime::from_secs(5));
    state
        .lock()
        .unwrap()
        .flows
        .tick(SimTime::from_secs(5), |_| false);

    let st = state.lock().unwrap();
    let states: Vec<FlowState> = st.flows.iter().map(|f| f.state).collect();
    assert!(
        states.contains(&FlowState::DummySilence),
        "idle keep-alive flow classified as dummy silence, got {states:?}"
    );
}
