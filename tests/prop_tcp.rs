//! Randomized-property tests: the TCP state machines deliver every byte
//! exactly once, in order, under arbitrary finite loss patterns.
//!
//! A deterministic harness shuttles packets between a `TcpSender` and a
//! `TcpReceiver` through a lossy "wire" whose drop decisions come from a
//! [`SimRng`]-generated boolean schedule (exhausted schedules stop
//! dropping, so every run terminates). Timers fire in deadline order
//! whenever the wire goes idle — exactly the situations where real TCP
//! relies on its RTO. Cases come from fixed seeds, so a failure
//! reproduces exactly from its printed seed.

use taq_sim::{FlowKey, NodeId, PacketBuilder, SimDuration, SimRng, TcpFlags};
use taq_tcp::{MockIo, TcpConfig, TcpReceiver, TcpSender, TimerKind, Variant};

const CASES: u64 = 64;

fn flow() -> FlowKey {
    FlowKey {
        src: NodeId(1),
        src_port: 80,
        dst: NodeId(2),
        dst_port: 5_000,
    }
}

/// Runs a full transfer of `bytes` through a wire that drops data-path
/// packets per `drops` (one decision per forwarded packet, both
/// directions interleaved). Returns (delivered bytes, sender timeouts).
fn transfer(bytes: u64, variant: Variant, drops: Vec<bool>) -> (u64, u64) {
    let cfg = TcpConfig {
        variant,
        // Short timers keep iteration counts small; correctness must
        // not depend on timer magnitudes.
        min_rto: SimDuration::from_millis(100),
        initial_rto: SimDuration::from_millis(200),
        ..TcpConfig::default()
    };
    let mut sender = TcpSender::new(cfg.clone(), flow(), bytes);
    let mut receiver = TcpReceiver::new(cfg, flow().reversed(), variant == Variant::Sack);
    let mut io_s = MockIo::new();
    let mut io_r = MockIo::new();
    let mut drops = drops.into_iter();
    let mut drop_next = move || drops.next().unwrap_or(false);

    // Handshake: the client SYN reaches the sender out of band.
    let syn = PacketBuilder::new(flow().reversed())
        .seq(0)
        .flags(TcpFlags::SYN)
        .meta(bytes)
        .build();
    sender.on_syn(&syn, &mut io_s);

    for _round in 0..100_000 {
        if sender.is_closed() && receiver.is_complete() {
            break;
        }
        let mut moved = false;
        // Sender → receiver.
        for pkt in io_s.take_sent() {
            moved = true;
            if !drop_next() {
                io_r.now = io_r.now.max(io_s.now) + SimDuration::from_millis(10);
                receiver.on_packet(&pkt, &mut io_r);
            }
        }
        // Receiver → sender.
        for pkt in io_r.take_sent() {
            moved = true;
            if !drop_next() {
                io_s.now = io_s.now.max(io_r.now) + SimDuration::from_millis(10);
                sender.on_packet(&pkt, &mut io_s);
            }
        }
        if moved {
            continue;
        }
        // Wire idle: fire the earliest timer across both endpoints.
        let s_deadline = io_s.timer_deadline(TimerKind::Rto);
        let r_deadline = io_r.timer_deadline(TimerKind::DelayedAck);
        match (s_deadline, r_deadline) {
            (Some(s), Some(r)) if r < s => {
                io_r.fire_timer(TimerKind::DelayedAck);
                receiver.on_timer(TimerKind::DelayedAck, &mut io_r);
            }
            (None, Some(_)) => {
                io_r.fire_timer(TimerKind::DelayedAck);
                receiver.on_timer(TimerKind::DelayedAck, &mut io_r);
            }
            (Some(_), _) => {
                io_s.fire_timer(TimerKind::Rto);
                sender.on_timer(TimerKind::Rto, &mut io_s);
            }
            (None, None) => break, // Deadlock would fail the assertions.
        }
    }
    (receiver.delivered_bytes(), sender.stats.timeouts)
}

const VARIANTS: [Variant; 3] = [Variant::Reno, Variant::NewReno, Variant::Sack];

/// Every transfer completes with exactly the requested bytes, for
/// any variant and any finite drop schedule.
#[test]
fn lossy_transfer_delivers_exactly_once() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(seed);
        let bytes = rng.range_u64(0, 29_999);
        let variant = VARIANTS[rng.next_below(3) as usize];
        let n = rng.next_below(400) as usize;
        let drops: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let (delivered, _timeouts) = transfer(bytes, variant, drops);
        assert_eq!(delivered, bytes, "seed {seed}");
    }
}

/// A lossless wire never times out, regardless of variant or size.
#[test]
fn clean_transfer_has_no_timeouts() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(100 + seed);
        let bytes = rng.range_u64(1, 49_999);
        let variant = VARIANTS[rng.next_below(3) as usize];
        let (delivered, timeouts) = transfer(bytes, variant, vec![]);
        assert_eq!(delivered, bytes, "seed {seed}");
        assert_eq!(timeouts, 0, "seed {seed}");
    }
}

/// Bursty loss (drop the first k packets outright) still completes:
/// the handshake and first window survive arbitrary consecutive
/// loss through RTO retries.
#[test]
fn leading_burst_loss_recovers() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(200 + seed);
        let bytes = rng.range_u64(1, 9_999);
        let burst = rng.range_u64(1, 11) as usize;
        let (delivered, timeouts) = transfer(bytes, Variant::NewReno, vec![true; burst]);
        assert_eq!(delivered, bytes, "seed {seed}");
        assert!(
            timeouts > 0,
            "a leading burst forces at least one RTO (seed {seed})"
        );
    }
}
