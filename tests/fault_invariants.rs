//! Invariants the fault-injection layer must preserve.
//!
//! Three claims are checked against fault-laden dumbbell runs:
//!
//! 1. **Determinism** — a scenario with every packet-fault class armed
//!    plus a jittered bottleneck produces byte-identical `FlowLog`
//!    records, `TaqStats`, and fault counters for a fixed seed, no
//!    matter how many sweep threads execute it. This is the load-bearing
//!    property: fault traces replay exactly, so a failure found in a
//!    1000-seed sweep reproduces from its seed alone.
//! 2. **Bounded fairness degradation** — injecting moderate faults
//!    costs TAQ some short-term Jain fairness, but the drop is bounded
//!    and no slice-level shutouts appear.
//! 3. **No permanently silent flow** — under each individual fault
//!    class, every flow still completes its transfer. Faults delay
//!    flows; they must never wedge one forever.

use taq_bench::{build_qdisc, fairness_run, sweep_seeds, Discipline, FairnessRunConfig};
use taq_faults::{FaultPlan, FaultStats, GilbertElliott};
use taq_sim::{Bandwidth, DumbbellConfig, SimDuration, SimTime};
use taq_tcp::FlowRecord;
use taq_workloads::DumbbellSpec;

/// A fault plan arming every packet-fault class plus link jitter —
/// the worst case for determinism, since each class draws from its own
/// salted RNG stream and any cross-contamination would show up as a
/// divergent trace.
fn everything_plan(horizon: SimTime) -> FaultPlan {
    FaultPlan::none()
        .with_burst_loss(GilbertElliott::bursts(0.01, 5.0))
        .with_reorder(0.02, 3)
        .with_duplicate(0.005)
        .with_corrupt(0.005)
        .with_blackout(
            SimTime::from_secs(12),
            SimTime::from_secs(12) + SimDuration::from_millis(400),
        )
        .with_rate_jitter(SimDuration::from_millis(500), 0.7, 1.3, horizon)
}

/// One run's comparable outputs, field-exact via `PartialEq`.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    seed: u64,
    records: Vec<FlowRecord>,
    taq: taq::TaqStats,
    faults: FaultStats,
}

fn faulty_run(seed: u64) -> RunFingerprint {
    let horizon = SimTime::from_secs(40);
    let rate = Bandwidth::from_kbps(400);
    let spec =
        DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate)).faults(everything_plan(horizon));
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
    let mut sc = spec.build_with_reverse(seed, built.forward, built.reverse);
    sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
    sc.run_until(horizon);
    let records = sc.log.lock().unwrap().records.clone();
    let taq = built
        .taq_state
        .expect("taq run")
        .lock()
        .unwrap()
        .stats
        .clone();
    let faults = sc
        .fault_stats
        .expect("fault plan installed")
        .lock()
        .unwrap()
        .clone();
    RunFingerprint {
        seed,
        records,
        taq,
        faults,
    }
}

#[test]
fn fault_laden_runs_are_byte_identical_at_any_thread_count() {
    let seeds = [3u64, 7, 11, 13];
    let serial = sweep_seeds(&seeds, 1, faulty_run);
    for threads in [2, 4] {
        let parallel = sweep_seeds(&seeds, threads, faulty_run);
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.seed, seeds[i], "results come back in input order");
            assert_eq!(
                s, p,
                "seed {} diverged between 1 and {threads} threads",
                s.seed
            );
        }
    }
    // The faults really fired — the equality above compared non-trivial
    // traces, not untouched links.
    for run in &serial {
        assert!(
            run.faults.burst_losses > 0 && run.faults.rate_changes > 0,
            "seed {} injected faults: {:?}",
            run.seed,
            run.faults
        );
        assert!(!run.records.is_empty() && run.taq.offered > 0);
    }
    // Distinct seeds produce distinct fault traces.
    assert_ne!(serial[0].faults, serial[1].faults);
}

#[test]
fn fairness_degrades_boundedly_under_moderate_faults() {
    let rate = Bandwidth::from_kbps(600);
    let duration = SimTime::from_secs(120);
    let clean_cfg = FairnessRunConfig::new(7, rate, 10, duration);
    let faulty_cfg = FairnessRunConfig::new(7, rate, 10, duration).faults(
        FaultPlan::none()
            .with_burst_loss(GilbertElliott::bursts(0.005, 4.0))
            .with_reorder(0.01, 3)
            .with_rate_jitter(SimDuration::from_secs(2), 0.8, 1.2, duration),
    );
    let clean = fairness_run(&clean_cfg, Discipline::Taq);
    let faulty = fairness_run(&faulty_cfg, Discipline::Taq);

    let injected = faulty.fault_stats.expect("faulty run reports stats");
    assert!(injected.burst_losses > 0, "faults fired: {injected:?}");
    assert!(clean.fault_stats.is_none(), "clean run has no fault layer");

    // Bounded Jain drop: moderate faults may cost fairness, but not
    // collapse it, and they must not shut any flow out of a slice.
    let drop = clean.short_term_jain - faulty.short_term_jain;
    assert!(
        drop <= 0.25,
        "short-term Jain dropped {:.3} -> {:.3} (delta {drop:.3})",
        clean.short_term_jain,
        faulty.short_term_jain
    );
    assert!(
        faulty.long_term_jain > 0.8,
        "long-term fairness survives faults: {:.3}",
        faulty.long_term_jain
    );
    assert!(
        faulty.shutout_fraction < 0.05,
        "no slice-level shutouts under moderate faults: {:.3}",
        faulty.shutout_fraction
    );
}

#[test]
fn no_fault_class_permanently_silences_a_flow() {
    let horizon = SimTime::from_secs(120);
    let classes: Vec<(&str, FaultPlan)> = vec![
        (
            "burst_loss",
            FaultPlan::none().with_burst_loss(GilbertElliott::bursts(0.02, 6.0)),
        ),
        ("reorder", FaultPlan::none().with_reorder(0.05, 4)),
        ("duplicate", FaultPlan::none().with_duplicate(0.02)),
        ("corrupt", FaultPlan::none().with_corrupt(0.01)),
        (
            "flaps",
            FaultPlan::none().with_flaps(
                2,
                SimTime::from_secs(8),
                SimDuration::from_secs(20),
                SimDuration::from_millis(600),
            ),
        ),
        (
            "rate_jitter",
            FaultPlan::none().with_rate_jitter(SimDuration::from_secs(1), 0.5, 1.2, horizon),
        ),
    ];
    for (name, plan) in classes {
        let rate = Bandwidth::from_kbps(600);
        let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate)).faults(plan);
        let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
        let built = build_qdisc(Discipline::Taq, rate, buffer, 11);
        let mut sc = spec.build_with_reverse(11, built.forward, built.reverse);
        sc.add_bulk_clients(6, 30_000, SimDuration::from_secs(1));
        sc.run_until(horizon);
        let records = sc.log.lock().unwrap().records.clone();
        assert_eq!(records.len(), 6, "{name}: all transfers recorded");
        for r in &records {
            assert!(
                r.completed_at.is_some(),
                "{name}: flow tag {} never finished ({:?} faults: {:?})",
                r.tag,
                r,
                sc.fault_stats.as_ref().map(|s| s.lock().unwrap().clone())
            );
        }
    }
}
