//! Integration: host-layer edge cases — handshake packet loss in both
//! directions, duplicate SYNs, abandoned connection attempts, and late
//! packets after closure.

use taq_queues::DropTail;
use taq_sim::{
    Bandwidth, Dumbbell, DumbbellConfig, LinkId, LinkMonitor, Packet, SimDuration, SimTime,
    Simulator,
};
use taq_tcp::{new_flow_log, ClientHost, Request, ServerHost, TcpConfig};

fn setup(seed: u64) -> (Simulator, Dumbbell, taq_sim::NodeId) {
    let mut sim = Simulator::new(seed);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let db = Dumbbell::build_simple(&mut sim, cfg, Box::new(DropTail::with_packets(30)));
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    (sim, db, server)
}

/// Drops the first `n` packets crossing a link (deterministic handshake
/// sabotage). Implemented as a qdisc wrapper via a counting monitor +
/// wire loss would be random; instead we use a dedicated qdisc.
#[derive(Debug)]
struct DropFirstN {
    inner: DropTail,
    remaining: u32,
}

impl taq_sim::Qdisc for DropFirstN {
    fn enqueue(
        &mut self,
        pkt: taq_sim::PacketId,
        arena: &mut taq_sim::PacketArena,
        now: SimTime,
    ) -> taq_sim::EnqueueOutcome {
        if self.remaining > 0 {
            self.remaining -= 1;
            return taq_sim::EnqueueOutcome::rejected(pkt);
        }
        self.inner.enqueue(pkt, arena, now)
    }

    fn dequeue(
        &mut self,
        arena: &mut taq_sim::PacketArena,
        now: SimTime,
    ) -> Option<taq_sim::PacketId> {
        self.inner.dequeue(arena, now)
    }

    fn len(&self) -> usize {
        taq_sim::Qdisc::len(&self.inner)
    }

    fn byte_len(&self) -> usize {
        self.inner.byte_len()
    }

    fn name(&self) -> &'static str {
        "drop-first-n"
    }
}

#[test]
fn lost_syn_is_retried_and_transfer_completes() {
    // The reverse (client→server) path eats the first two packets: the
    // SYN and its first retry. The third attempt succeeds.
    let mut sim = Simulator::new(5);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let db = Dumbbell::build(
        &mut sim,
        cfg,
        Box::new(DropTail::with_packets(30)),
        Box::new(DropFirstN {
            inner: DropTail::with_packets(100),
            remaining: 2,
        }),
    );
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.push_request(Request {
        tag: 0,
        bytes: 5_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));

    let log = log.lock().unwrap();
    let rec = &log.records[0];
    assert!(rec.completed_at.is_some(), "completes despite SYN losses");
    assert!(rec.syn_retries >= 2, "retried at least twice: {rec:?}");
    // The wait shows up in the download time (SYN backoff is 1 s, 2 s).
    assert!(rec.download_time().unwrap() >= SimDuration::from_secs(3));
}

#[test]
fn lost_syn_ack_is_covered_by_server_rto() {
    // The forward (server→client) path eats the first packet — the
    // SYN-ACK. The server's handshake RTO resends it.
    let mut sim = Simulator::new(6);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let db = Dumbbell::build_simple(
        &mut sim,
        cfg,
        Box::new(DropFirstN {
            inner: DropTail::with_packets(30),
            remaining: 1,
        }),
    );
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.push_request(Request {
        tag: 0,
        bytes: 5_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));

    let records = log.lock().unwrap();
    let rec = &records.records[0];
    assert!(rec.completed_at.is_some());
    // The server must have accepted exactly one connection despite the
    // client's SYN retry racing the retransmitted SYN-ACK.
    let srv = sim.agent::<ServerHost>(server).unwrap();
    assert_eq!(srv.accepted, 1, "duplicate SYNs do not fork connections");
    assert_eq!(srv.live_connections(), 0, "connection closed cleanly");
}

#[test]
fn abandoned_attempts_are_logged_unfinished() {
    // Black-hole reverse path: nothing ever reaches the server. With a
    // bounded retry budget the client gives up and logs the failure.
    let mut sim = Simulator::new(7);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(600));
    let db = Dumbbell::build(
        &mut sim,
        cfg,
        Box::new(DropTail::with_packets(30)),
        Box::new(DropFirstN {
            inner: DropTail::with_packets(100),
            remaining: u32::MAX,
        }),
    );
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.max_syn_retries = 3;
    client.push_request(Request {
        tag: 9,
        bytes: 5_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(120));

    let log = log.lock().unwrap();
    assert_eq!(log.records.len(), 1, "the failure is recorded");
    let rec = &log.records[0];
    assert!(rec.completed_at.is_none());
    assert_eq!(rec.syn_retries, 3);
    let srv = sim.agent::<ServerHost>(server).unwrap();
    assert_eq!(srv.accepted, 0);
}

/// Counts stray deliveries to the client after its transfer finished.
#[derive(Debug, Default)]
struct ArrivalCounter {
    count: u64,
}

impl LinkMonitor for ArrivalCounter {
    fn on_transmit(&mut self, _link: LinkId, _pkt: &Packet, _now: SimTime) {
        self.count += 1;
    }
}

/// An agent that fires one stale data packet at a closed client port.
struct StaleInjector {
    target: taq_sim::NodeId,
}

impl taq_sim::Agent for StaleInjector {
    fn on_start(&mut self, ctx: &mut taq_sim::Ctx<'_>) {
        let stale = taq_sim::PacketBuilder::new(taq_sim::FlowKey {
            src: ctx.node(),
            src_port: 80,
            dst: self.target,
            dst_port: 10_000, // The client's first (now closed) port.
        })
        .seq(1)
        .payload(460)
        .build();
        ctx.send(self.target, stale);
    }

    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut taq_sim::Ctx<'_>) {}
}

#[test]
fn late_packets_after_close_are_ignored_gracefully() {
    // Complete a transfer, then deliver a stray retransmission for the
    // closed connection: it must not panic, resurrect state, or create
    // new log records.
    let (mut sim, db, server) = setup(8);
    sim.add_monitor(Box::new(ArrivalCounter::default()));
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.push_request(Request {
        tag: 0,
        bytes: 3_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    let injector = sim.add_agent(Box::new(StaleInjector { target: node }));
    db.attach_left(&mut sim, injector);
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(30));
    assert!(log.lock().unwrap().records[0].completed_at.is_some());
    // Fire the stale packet well after closure.
    sim.schedule_start(injector, SimTime::from_secs(30));
    sim.run_until(SimTime::from_secs(35));
    // Nothing panicked, nothing new was logged.
    assert_eq!(log.lock().unwrap().records.len(), 1);
    assert_eq!(
        sim.agent::<ClientHost>(node).unwrap().completed,
        1,
        "completion count unchanged"
    );
}
