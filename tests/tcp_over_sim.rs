//! End-to-end integration: TCP hosts over the simulated dumbbell.

use taq_queues::DropTail;
use taq_sim::{Bandwidth, Dumbbell, DumbbellConfig, SimDuration, SimTime, Simulator};
use taq_tcp::{new_flow_log, ClientHost, Request, ServerHost, TcpConfig, Variant};

/// Builds a one-server dumbbell; returns (sim, dumbbell, server node).
fn setup(rate_kbps: u64, buffer_pkts: usize) -> (Simulator, Dumbbell, taq_sim::NodeId) {
    let mut sim = Simulator::new(7);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(rate_kbps));
    let db = Dumbbell::build_simple(&mut sim, cfg, Box::new(DropTail::with_packets(buffer_pkts)));
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);
    (sim, db, server)
}

#[test]
fn single_download_completes_uncongested() {
    let (mut sim, db, server) = setup(1000, 50);
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.push_request(Request {
        tag: 1,
        bytes: 50_000,
    });
    let client_node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, client_node);
    sim.schedule_start(client_node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));

    let log = log.lock().unwrap();
    assert_eq!(log.records.len(), 1, "one transfer recorded");
    let rec = &log.records[0];
    assert_eq!(rec.bytes, 50_000);
    assert!(rec.completed_at.is_some(), "transfer finished");
    let dl = rec.download_time().unwrap().as_secs_f64();
    // 50 KB at 1 Mbps is ~0.43 s of serialization; slow start from IW=2
    // over a 200 ms RTT needs ~7 round trips, so a couple of seconds.
    assert!(dl > 0.4 && dl < 10.0, "download time {dl}");
    // No losses on an uncongested link.
    assert_eq!(sim.link_stats(db.bottleneck).dropped_pkts, 0);
}

#[test]
fn parallel_pool_respects_limit_and_finishes() {
    let (mut sim, db, server) = setup(1000, 50);
    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 4, log.clone());
    for tag in 0..10 {
        client.push_request(Request { tag, bytes: 20_000 });
    }
    let client_node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, client_node);
    sim.schedule_start(client_node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(120));

    let log = log.lock().unwrap();
    assert_eq!(log.records.len(), 10, "all ten objects downloaded");
    assert!(log.records.iter().all(|r| r.completed_at.is_some()));
    // Tags must cover 0..10 (completion order may vary).
    let mut tags: Vec<u64> = log.records.iter().map(|r| r.tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, (0..10).collect::<Vec<_>>());
}

#[test]
fn congested_link_loses_packets_but_transfers_complete() {
    // 40 clients sharing 400 Kbps: fair share ~10 Kbps = ~2.5 pkts/RTT —
    // inside the small packet regime.
    let mut sim = Simulator::new(11);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(400));
    let buffer = Bandwidth::from_kbps(400).packets_per(SimDuration::from_millis(200), 500);
    let db = Dumbbell::build_simple(&mut sim, cfg, Box::new(DropTail::with_packets(buffer)));
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);

    let log = new_flow_log();
    let mut clients = Vec::new();
    for i in 0..40 {
        let mut c = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
        c.push_request(Request {
            tag: i,
            bytes: 30_000,
        });
        let node = sim.add_agent(Box::new(c));
        db.attach_right(&mut sim, node);
        // Stagger starts over the first second.
        sim.schedule_start(node, SimTime::from_millis(25 * i));
        clients.push(node);
    }
    sim.run_until(SimTime::from_secs(600));

    let stats = sim.link_stats(db.bottleneck);
    assert!(stats.dropped_pkts > 0, "congestion should cause drops");
    let done: Vec<_> = log
        .lock()
        .unwrap()
        .records
        .iter()
        .filter_map(|r| r.completed_at)
        .collect();
    assert!(
        done.len() >= 35,
        "most transfers complete eventually: {}/40",
        done.len()
    );
    // Link utilization should be high while the transfers were running
    // (paper: >90% even under pathological sharing); measure over the
    // busy period, i.e. until the last completion.
    let busy_end = done.iter().copied().max().unwrap();
    let util = stats.utilization(busy_end.saturating_since(SimTime::ZERO));
    assert!(util > 0.7, "utilization {util}");
}

#[test]
fn sack_variant_also_completes_under_loss() {
    let mut sim = Simulator::new(13);
    let cfg = DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(400));
    let db = Dumbbell::build_simple(&mut sim, cfg, Box::new(DropTail::with_packets(10)));
    let tcp = TcpConfig {
        variant: Variant::Sack,
        ..TcpConfig::default()
    };
    let server = sim.add_agent(Box::new(ServerHost::new(tcp.clone(), 80)));
    db.attach_left(&mut sim, server);
    let log = new_flow_log();
    for i in 0..10 {
        let mut c = ClientHost::new(tcp.clone(), server, 80, 1, log.clone());
        c.push_request(Request {
            tag: i,
            bytes: 40_000,
        });
        let node = sim.add_agent(Box::new(c));
        db.attach_right(&mut sim, node);
        sim.schedule_start(node, SimTime::from_millis(10 * i));
    }
    sim.run_until(SimTime::from_secs(300));
    let done = log
        .lock()
        .unwrap()
        .records
        .iter()
        .filter(|r| r.completed_at.is_some())
        .count();
    assert_eq!(done, 10, "all SACK transfers complete");
}

#[test]
fn determinism_same_seed_same_flow_log() {
    let run = || {
        let (mut sim, db, server) = setup(600, 30);
        let log = new_flow_log();
        for i in 0..5 {
            let mut c = ClientHost::new(TcpConfig::default(), server, 80, 2, log.clone());
            c.push_request(Request {
                tag: i,
                bytes: 25_000,
            });
            let node = sim.add_agent(Box::new(c));
            db.attach_right(&mut sim, node);
            sim.schedule_start(node, SimTime::ZERO);
        }
        sim.run_until(SimTime::from_secs(120));
        let out: Vec<_> = log
            .lock()
            .unwrap()
            .records
            .iter()
            .map(|r| (r.tag, r.completed_at))
            .collect();
        out
    };
    assert_eq!(run(), run());
}
