//! The headline result, end-to-end: in a small packet regime TAQ
//! improves short-term fairness and nearly eliminates stalled flows
//! relative to DropTail, without sacrificing utilization.

use taq::{TaqConfig, TaqPair};
use taq_metrics::{EvolutionTracker, SliceThroughput};
use taq_queues::DropTail;
use taq_sim::{Bandwidth, DumbbellConfig, Qdisc, SimDuration, SimTime};
use taq_tcp::TcpConfig;
use taq_telemetry::{shared_sink, RingBufferSink, Telemetry};
use taq_workloads::{DumbbellScenario, BULK_BYTES};

struct RunResult {
    short_term_jain: f64,
    stalled_fraction: f64,
    utilization: f64,
}

/// Runs `flows` long-lived flows over a `rate_kbps` bottleneck for
/// `secs`, measuring 20 s-slice fairness and flow evolution.
fn run(qdisc: Box<dyn Qdisc>, seed: u64, rate_kbps: u64, flows: usize, secs: u64) -> RunResult {
    let rate = Bandwidth::from_kbps(rate_kbps);
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let mut sc = DumbbellScenario::new(seed, topo, qdisc, TcpConfig::default());
    let slices = sc.sim.add_monitor(Box::new(SliceThroughput::new(
        sc.db.bottleneck,
        SimDuration::from_secs(20),
    )));
    let evo = sc.sim.add_monitor(Box::new(EvolutionTracker::new(
        sc.db.bottleneck,
        SimDuration::from_secs(2),
    )));
    sc.add_bulk_clients(flows, BULK_BYTES, SimDuration::from_secs(2));
    sc.run_until(SimTime::from_secs(secs));

    // Skip the first two slices (startup transient).
    let n_slices = (secs / 20) as usize;
    let slices = sc
        .sim
        .monitor::<SliceThroughput>(slices)
        .expect("slice monitor");
    let short_term_jain = slices.mean_jain(2, n_slices, flows);
    let series = sc
        .sim
        .monitor::<EvolutionTracker>(evo)
        .expect("evolution monitor")
        .series();
    let from = series.len() / 4;
    let (mut stalled, mut total) = (0usize, 0usize);
    for c in &series[from..] {
        stalled += c.stalled;
        total += c.total();
    }
    let stalled_fraction = if total == 0 {
        0.0
    } else {
        stalled as f64 / total as f64
    };
    let stats = sc.sim.link_stats(sc.db.bottleneck);
    RunResult {
        short_term_jain,
        stalled_fraction,
        utilization: stats.utilization(SimDuration::from_secs(secs)),
    }
}

#[test]
fn taq_beats_droptail_on_short_term_fairness() {
    // 600 Kbps shared by 60 flows: fair share 10 Kbps ≈ 1 pkt/RTT —
    // deep in the sub-packet regime (paper Figure 2 vs Figure 8).
    let rate = Bandwidth::from_kbps(600);
    let flows = 60;
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let dt = run(
        Box::new(DropTail::with_packets(buffer)),
        42,
        600,
        flows,
        300,
    );
    let pair = TaqPair::new(TaqConfig::for_link(rate));
    // Telemetry rides along: its counters must agree with TaqStats.
    let telemetry = Telemetry::new();
    let (ring, erased) = shared_sink(RingBufferSink::new(1024));
    telemetry.add_shared_sink(erased);
    pair.state.lock().unwrap().attach_telemetry(telemetry);
    let tq = run(Box::new(pair.forward), 42, 600, flows, 300);

    // The stats snapshot and the sink-observed event stream are two
    // views of the same run: one Classified event per offered packet,
    // one Dropped event per drop, drop_rate consistent with both.
    {
        let st = pair.state.lock().unwrap();
        let ring = ring.lock().unwrap();
        assert_eq!(st.stats.offered, ring.count("classified"));
        assert_eq!(st.stats.dropped, ring.count("dropped"));
        let snapshot = st.stats.snapshot();
        assert_eq!(
            snapshot.get("offered").and_then(|v| v.as_u64()),
            Some(st.stats.offered)
        );
        assert_eq!(
            snapshot.get("dropped").and_then(|v| v.as_u64()),
            Some(st.stats.dropped)
        );
        let rate = snapshot.get("drop_rate").and_then(|v| v.as_f64()).unwrap();
        assert!((rate - st.stats.drop_rate()).abs() < 1e-9);
        assert!(st.stats.dropped > 0, "the contended link drops packets");
    }

    assert!(
        tq.short_term_jain > dt.short_term_jain + 0.1,
        "TAQ {:.3} must clearly beat DropTail {:.3}",
        tq.short_term_jain,
        dt.short_term_jain
    );
    assert!(
        tq.short_term_jain > 0.8,
        "TAQ short-term JFI {:.3} (paper: mostly > 0.8)",
        tq.short_term_jain
    );
    assert!(
        tq.utilization > 0.85,
        "TAQ keeps the link busy: {:.3}",
        tq.utilization
    );
    assert!(
        dt.utilization > 0.85,
        "DropTail link utilization is high too: {:.3}",
        dt.utilization
    );
}

#[test]
fn taq_nearly_eliminates_stalled_flows() {
    // The Figure 9 claim at a sub-packet operating point: 90 flows over
    // 600 Kbps (fair share ≈ 6.7 Kbps ≈ 0.7 packets/RTT). At the
    // paper's most extreme point (180 flows, 0.17 pkts/RTT) our
    // RFC-6298-compliant senders are past the breaking point where the
    // paper itself says no queueing policy suffices without admission
    // control; the Fig 9 bench reports both points.
    let rate = Bandwidth::from_kbps(600);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let dt = run(Box::new(DropTail::with_packets(buffer)), 7, 600, 90, 240);
    let pair = TaqPair::new(TaqConfig::for_link(rate));
    let tq = run(Box::new(pair.forward), 7, 600, 90, 240);

    assert!(
        dt.stalled_fraction > 0.2,
        "DropTail leaves many flows stalled: {:.3}",
        dt.stalled_fraction
    );
    assert!(
        tq.stalled_fraction < dt.stalled_fraction / 2.0,
        "TAQ at least halves stalls: {:.3} vs {:.3}",
        tq.stalled_fraction,
        dt.stalled_fraction
    );
}
