//! The telemetry layer end-to-end: the exact transition sequence a
//! scripted flow produces, the completeness of a full simulation's JSONL
//! trace, and the agreement between the `telemetry_report` summary
//! aggregates and the raw event stream.

use taq::{FlowTable, TaqConfig};
use taq_bench::{telemetry_report, TelemetryReportConfig};
use taq_sim::{Bandwidth, FlowKey, NodeId, PacketBuilder, SimTime};
use taq_telemetry::{jsonl_event_kind, shared_sink, Event, RingBufferSink, Telemetry};

fn key() -> FlowKey {
    FlowKey {
        src: NodeId(1),
        src_port: 80,
        dst: NodeId(2),
        dst_port: 7_000,
    }
}

fn data(seq: u64) -> taq_sim::Packet {
    PacketBuilder::new(key()).seq(seq).payload(460).build()
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// Scripted lifecycle (the paper's Figure 7 walked edge by edge): a flow
/// ramps up, takes a local drop, falls silent through its RTO, repairs
/// with a retransmission, and resumes — and the `RingBufferSink`
/// captures exactly the transition sequence the state machine defines.
#[test]
fn scripted_flow_emits_exact_transition_sequence() {
    let mut tab = FlowTable::new(TaqConfig::for_link(Bandwidth::from_kbps(600)));
    let telemetry = Telemetry::new();
    let (ring, erased) = shared_sink(RingBufferSink::new(256));
    telemetry.add_shared_sink(erased);
    tab.set_telemetry(telemetry);

    // Three steady epochs (100 ms each): slow start settles into Normal
    // at the second epoch boundary.
    let mut seq = 1;
    for epoch in 0..3u64 {
        for i in 0..3u64 {
            tab.observe_forward(&data(seq), t(epoch * 100 + i * 20));
            seq += 460;
        }
    }
    // The queue drops one of its packets: explicit loss recovery.
    tab.on_drop(&key(), false, t(310));
    // One fully silent epoch with the repair outstanding: the sender is
    // waiting out its RTO.
    tab.tick(t(450), |_| false);
    // The retransmission arrives — timeout recovery, immediately.
    let obs = tab.observe_forward(&data(seq - 460), t(460));
    assert!(obs.retransmission);
    // A clean epoch of fresh data completes the recovery into SlowStart.
    tab.observe_forward(&data(seq), t(560));

    let ring = ring.lock().unwrap();
    let transitions: Vec<(&str, &str, &str)> = ring
        .events()
        .filter_map(|(_, e)| match e {
            Event::FlowStateChanged {
                from, to, trigger, ..
            } => Some((*from, *to, *trigger)),
            _ => None,
        })
        .collect();
    assert_eq!(
        transitions,
        vec![
            ("SlowStart", "Normal", "active-epoch"),
            ("Normal", "ExplicitLossRecovery", "local-drop"),
            ("ExplicitLossRecovery", "TimeoutSilence", "silent-epoch"),
            (
                "TimeoutSilence",
                "TimeoutRecovery",
                "retransmit-after-silence"
            ),
            ("TimeoutRecovery", "SlowStart", "active-epoch"),
        ],
        "exact transition sequence"
    );
    // The repair was also surfaced as a retransmission event crediting
    // this queue's drop.
    let retransmits: Vec<bool> = ring
        .events()
        .filter_map(|(_, e)| match e {
            Event::Retransmit {
                repairs_local_drop, ..
            } => Some(*repairs_local_drop),
            _ => None,
        })
        .collect();
    assert_eq!(retransmits, vec![true]);
}

/// Acceptance: one instrumented TAQ simulation produces a JSONL trace
/// containing flow state transitions, classification decisions,
/// admission decisions, and queue-depth samples — and the summary /
/// ring-buffer aggregates agree with each other and with `TaqStats`.
#[test]
fn telemetry_report_trace_is_complete_and_consistent() {
    let cfg = TelemetryReportConfig::small_packet(42, SimTime::from_secs(40));
    let report = telemetry_report(&cfg);
    let taq = &report.taq;

    // JSONL completeness.
    assert!(!taq.jsonl.is_empty());
    let kinds: std::collections::BTreeSet<String> = taq
        .jsonl
        .iter()
        .filter_map(|l| jsonl_event_kind(l).map(str::to_string))
        .collect();
    for required in [
        "flow_state",
        "classified",
        "admission",
        "queue_depth",
        "link",
    ] {
        assert!(kinds.contains(required), "JSONL has {required}: {kinds:?}");
    }

    // Every sink saw the same stream: the ring buffer's exact per-kind
    // counts equal the summary sink's, and the totals line up.
    assert_eq!(taq.ring_total, taq.summary.total_events());
    for (kind, n) in &taq.ring_counts {
        assert_eq!(
            taq.summary.counts_by_kind.get(kind.as_str()),
            Some(n),
            "summary count for {kind}"
        );
    }
    // The JSONL sink too (one line per event).
    assert_eq!(taq.jsonl.len() as u64, taq.ring_total);

    // The middlebox's own counters match the sink-observed events.
    let snapshot = taq.stats_snapshot.as_ref().expect("taq run has a snapshot");
    let dropped = snapshot.get("dropped").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(dropped, taq.summary.total_drops());
    assert_eq!(dropped, *taq.ring_counts.get("dropped").unwrap_or(&0));
    let offered = snapshot.get("offered").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(offered, *taq.ring_counts.get("classified").unwrap_or(&0));

    // DropTail ran through the identical harness: link events and the
    // engine summary are present, but no middlebox internals.
    assert!(report.droptail.ring_counts.contains_key("link"));
    assert!(report.droptail.ring_counts.contains_key("engine_summary"));
    assert!(!report.droptail.ring_counts.contains_key("flow_state"));
    assert!(report.droptail.stats_snapshot.is_none());

    // And TAQ actually did something in this regime.
    assert!(dropped > 0, "a contended 600 kbps link drops packets");
    assert!(
        taq.summary.state_entries.values().any(|n| *n > 0),
        "state transitions observed"
    );
}
