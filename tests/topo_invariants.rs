//! Property-based invariants for the topology engine.
//!
//! Small random topologies (spanning tree over 2–5 routers, random
//! per-pipe rates/delays/disciplines, clients on every non-server
//! router) must satisfy, for every seed:
//!
//! - **packet conservation per link** — every packet offered to a link
//!   is accounted for: dropped, transmitted, lost on the wire, or still
//!   buffered at the horizon;
//! - **no routing loops** — the static next-hop table reaches every
//!   router pair within `routers` hops (`Topology::path` returns `None`
//!   on a loop walk, so a `Some` of bounded length is loop-freedom);
//! - **FIFO ordering per (link, class)** — on single-class links
//!   (DropTail pipes, FIFO access links) the transmit order equals the
//!   enqueue order minus drops; multi-class disciplines (SFQ, TAQ)
//!   reorder across queues by design and are excluded;
//! - **deterministic replay** — the same seed reproduces the same flow
//!   log, per-link counters, and event count, on both scheduler
//!   backends.

use taq_sim::{
    Bandwidth, EventRecorder, LinkId, MonitorId, RecordedKind, SchedulerKind, SimDuration, SimRng,
    SimTime,
};
use taq_workloads::{PipeSpec, QdiscSpec, TopoScenario, TopologySpec};

/// A randomly drawn topology plus the bookkeeping the assertions need.
struct RandomCase {
    spec: TopologySpec,
    /// Per-pipe flag: forward link keeps single-class FIFO order.
    pipe_is_fifo: Vec<bool>,
    /// Per-pipe flag: reverse link is a plain FIFO (everything but
    /// TAQ's reverse half, which may hold SYNs for admission).
    reverse_is_fifo: Vec<bool>,
}

/// Draws a connected topology: router `i` hangs off a uniformly random
/// earlier router, so the pipe set is a spanning tree and every router
/// pair is mutually reachable through the duplex pipes.
fn random_case(rng: &mut SimRng) -> RandomCase {
    let routers = 2 + rng.next_below(4) as usize; // 2..=5
    let rates = [300u64, 400, 600, 800];
    let delays = [10u64, 24, 48];
    let mut pipes = Vec::new();
    let mut pipe_is_fifo = Vec::new();
    let mut reverse_is_fifo = Vec::new();
    for i in 1..routers {
        let parent = rng.next_below(i as u64) as usize;
        let rate = Bandwidth::from_kbps(rates[rng.next_below(4) as usize]);
        let delay = SimDuration::from_millis(delays[rng.next_below(3) as usize]);
        let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
        let (qdisc, fifo) = match rng.next_below(3) {
            0 => (
                QdiscSpec::DropTail {
                    buffer_pkts: buffer,
                },
                true,
            ),
            1 => (
                QdiscSpec::Sfq {
                    buffer_pkts: buffer,
                },
                false,
            ),
            _ => (QdiscSpec::taq(buffer), false),
        };
        let is_taq = matches!(qdisc, QdiscSpec::Taq { .. });
        pipes.push(PipeSpec::new(parent, i, rate, delay, qdisc));
        pipe_is_fifo.push(fifo);
        reverse_is_fifo.push(!is_taq);
    }
    RandomCase {
        spec: TopologySpec::new(routers, pipes),
        pipe_is_fifo,
        reverse_is_fifo,
    }
}

/// Builds and runs one case: two finite downloads per non-server
/// router, 15 simulated seconds.
fn run_case(case: &RandomCase, seed: u64) -> (TopoScenario, MonitorId) {
    let mut sc = case.spec.build(seed);
    let recorder = sc.sim.add_monitor(Box::<EventRecorder>::default());
    for r in 1..case.spec.routers {
        sc.add_bulk_clients_at(r, 2, 40_000, SimDuration::from_secs(1));
    }
    sc.run_until(SimTime::from_secs(15));
    (sc, recorder)
}

/// Total links the scenario created: two per pipe plus an up/down pair
/// per host (one server + the clients).
fn total_links(case: &RandomCase, sc: &TopoScenario) -> usize {
    2 * case.spec.pipes.len() + 2 * (1 + sc.clients.len())
}

#[test]
fn per_link_packet_conservation() {
    let mut rng = SimRng::new(0x7090);
    for seed in 1..=6u64 {
        let case = random_case(&mut rng);
        let (sc, _) = run_case(&case, seed);
        for l in 0..total_links(&case, &sc) {
            let link = LinkId(l as u32);
            let s = sc.sim.link_stats(link);
            let queued = sc.sim.link_qdisc(link).len() as u64;
            assert_eq!(
                s.offered_pkts,
                s.dropped_pkts + s.transmitted_pkts + s.wire_lost_pkts + queued,
                "seed {seed} link {l}: {s:?} queued {queued}"
            );
        }
        // The run did real work: the server-side pipe carried packets.
        assert!(sc.sim.link_stats(sc.pipe_link(0)).transmitted_pkts > 0);
    }
}

#[test]
fn no_routing_loops() {
    let mut rng = SimRng::new(0xA110F);
    for seed in 1..=6u64 {
        let case = random_case(&mut rng);
        let sc = case.spec.build(seed);
        let n = case.spec.routers;
        for from in 0..n {
            for to in 0..n {
                let path = sc.topo.path(from, to);
                let hops = path
                    .unwrap_or_else(|| panic!("seed {seed}: no path {from}→{to} (loop or hole)"));
                assert!(
                    hops.len() < n,
                    "seed {seed}: path {from}→{to} visits {} links in an {n}-router tree",
                    hops.len()
                );
            }
        }
    }
}

#[test]
fn fifo_order_per_single_class_link() {
    let mut rng = SimRng::new(0xF1F0);
    for seed in 1..=6u64 {
        let case = random_case(&mut rng);
        let (sc, recorder) = run_case(&case, seed);
        // Only single-class links keep global FIFO order.
        let mut fifo_links: Vec<LinkId> = Vec::new();
        for (i, (&fwd, &rev)) in case
            .pipe_is_fifo
            .iter()
            .zip(&case.reverse_is_fifo)
            .enumerate()
        {
            if fwd {
                fifo_links.push(sc.pipe_link(i));
            }
            if rev {
                fifo_links.push(sc.pipe_reverse(i));
            }
        }
        // Access links are unbounded FIFOs.
        for l in 2 * case.spec.pipes.len()..total_links(&case, &sc) {
            fifo_links.push(LinkId(l as u32));
        }
        let events = &sc
            .sim
            .monitor::<EventRecorder>(recorder)
            .expect("recorder")
            .events;
        for &link in &fifo_links {
            let enq: Vec<u64> = events
                .iter()
                .filter(|e| e.link == link && e.kind == RecordedKind::Enqueue)
                .map(|e| e.packet_id)
                .collect();
            let tx: Vec<u64> = events
                .iter()
                .filter(|e| e.link == link && e.kind == RecordedKind::Transmit)
                .map(|e| e.packet_id)
                .collect();
            // Transmit order must equal enqueue order restricted to the
            // packets that made it out.
            let transmitted: std::collections::HashSet<u64> = tx.iter().copied().collect();
            let expected: Vec<u64> = enq
                .iter()
                .copied()
                .filter(|id| transmitted.contains(id))
                .collect();
            assert_eq!(
                tx, expected,
                "seed {seed} link {link:?}: FIFO order violated"
            );
        }
    }
}

/// One run's comparable outputs.
fn fingerprint(
    sc: &TopoScenario,
    links: usize,
) -> (Vec<taq_tcp::FlowRecord>, Vec<(u64, u64, u64)>, u64) {
    let records = sc.log.lock().unwrap().records.clone();
    let stats = (0..links)
        .map(|l| {
            let s = sc.sim.link_stats(LinkId(l as u32));
            (s.offered_pkts, s.dropped_pkts, s.transmitted_pkts)
        })
        .collect();
    (records, stats, sc.sim.events_processed())
}

#[test]
fn deterministic_replay_across_runs_and_schedulers() {
    let mut rng = SimRng::new(0xDE7);
    for seed in [5u64, 9] {
        let case = random_case(&mut rng);
        let run = |scheduler: SchedulerKind| {
            let mut spec = case.spec.clone();
            spec.scheduler = scheduler;
            let wrapped = RandomCase {
                spec,
                pipe_is_fifo: case.pipe_is_fifo.clone(),
                reverse_is_fifo: case.reverse_is_fifo.clone(),
            };
            let (sc, _) = run_case(&wrapped, seed);
            let links = total_links(&wrapped, &sc);
            fingerprint(&sc, links)
        };
        let a = run(SchedulerKind::TimerWheel);
        let b = run(SchedulerKind::TimerWheel);
        assert_eq!(a, b, "seed {seed}: same-seed replay diverged");
        let h = run(SchedulerKind::BinaryHeap);
        assert_eq!(a, h, "seed {seed}: wheel and heap diverged");
        assert!(!a.0.is_empty(), "seed {seed} produced flow records");
    }
}
