//! Shard-conformance suite: the sharded engine is an *implementation
//! detail*, never an observable one.
//!
//! Random small topologies (spanning tree over 3–6 routers, random
//! per-pipe rates/delays/disciplines including TAQ, optionally one
//! faulted pipe) run to the same horizon at 1, 2 and 4 shards on both
//! scheduler backends. Every run must produce byte-identical
//! observables:
//!
//! - the flow log (canonicalized: sharded client threads append in
//!   nondeterministic order, the *set* of records is pinned),
//! - per-link counters,
//! - per-pipe TAQ statistics,
//! - per-pipe fault-injection counters,
//! - the total event count.
//!
//! A watchdog thread bounds each case's wall clock, so a lookahead bug
//! that stalls the null-message protocol fails the suite as a plain
//! test failure instead of hanging CI (the engine's own 10-second
//! receive timeout usually fires first and panics with
//! `ShardError::Deadlock`).

use std::sync::mpsc;
use std::time::Duration;
use taq_faults::{FaultPlan, FaultStats, GilbertElliott};
use taq_sim::{Bandwidth, LinkStats, SchedulerKind, SimDuration, SimRng, SimTime};
use taq_tcp::FlowRecord;
use taq_workloads::{PipeSpec, QdiscSpec, TopologySpec};

/// Everything observable a run produces.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    records: Vec<FlowRecord>,
    links: Vec<LinkStats>,
    taq: Vec<Option<taq::TaqStats>>,
    faults: Vec<Option<FaultStats>>,
    events: u64,
    /// Packets still live in the arena. Only comparable between runs at
    /// the *same* shard count: packets mid-flight across a shard cut at
    /// the horizon land in neither arena, so a busy horizon counts
    /// fewer in a sharded run than in the serial one. The quiescent
    /// drain test pins it to zero at every shard count instead.
    in_flight: usize,
}

/// Draws a connected spanning-tree topology: router `i` hangs off a
/// uniformly random earlier router. Roughly a third of the pipes run
/// TAQ; when `faulted`, one random pipe gets a Gilbert–Elliott burst
/// plan on top.
fn random_spec(rng: &mut SimRng, faulted: bool) -> TopologySpec {
    let routers = 3 + rng.next_below(4) as usize; // 3..=6
    let rates = [400u64, 600, 800];
    let delays = [10u64, 24, 48];
    let mut pipes = Vec::new();
    for i in 1..routers {
        let parent = rng.next_below(i as u64) as usize;
        let rate = Bandwidth::from_kbps(rates[rng.next_below(3) as usize]);
        let delay = SimDuration::from_millis(delays[rng.next_below(3) as usize]);
        let buffer = rate.packets_per(SimDuration::from_millis(200), 500).max(8);
        let qdisc = match rng.next_below(3) {
            0 => QdiscSpec::DropTail {
                buffer_pkts: buffer,
            },
            1 => QdiscSpec::Sfq {
                buffer_pkts: buffer,
            },
            _ => QdiscSpec::taq(buffer),
        };
        pipes.push(PipeSpec::new(parent, i, rate, delay, qdisc));
    }
    if faulted {
        let victim = rng.next_below(pipes.len() as u64) as usize;
        pipes[victim] = pipes[victim]
            .clone()
            .faults(FaultPlan::none().with_burst_loss(GilbertElliott::bursts(0.02, 5.0)));
    }
    TopologySpec::new(routers, pipes)
}

/// Runs `spec` once and fingerprints every observable.
fn run_case(spec: &TopologySpec, shards: u32, scheduler: SchedulerKind, seed: u64) -> Fingerprint {
    let spec = spec.clone().scheduler(scheduler).shards(shards);
    let mut sc = spec.build(seed);
    for r in 1..spec.routers {
        sc.add_bulk_clients_at(r, 2, 200_000, SimDuration::from_secs(1));
    }
    sc.run_until(SimTime::from_secs(15));
    let mut log = std::mem::take(&mut *sc.log.lock().unwrap());
    log.sort_canonical();
    let links = (0..spec.pipes.len())
        .flat_map(|i| [sc.pipe_link(i), sc.pipe_reverse(i)])
        .map(|l| sc.sim.link_stats(l).clone())
        .collect();
    let taq = sc
        .taq_states
        .iter()
        .map(|s| s.as_ref().map(|s| s.lock().unwrap().stats.clone()))
        .collect();
    let faults = sc
        .pipe_faults
        .iter()
        .map(|s| s.as_ref().map(|s| s.lock().unwrap().clone()))
        .collect();
    Fingerprint {
        records: log.records,
        links,
        taq,
        faults,
        events: sc.sim.events_processed(),
        // Not shard-invariant at a busy horizon (see the field docs);
        // fixed to zero here so the sweep compares everything else.
        in_flight: 0,
    }
}

/// Runs `f` on a worker thread and fails the test if it neither
/// finishes nor panics within the deadline.
fn with_deadline(label: String, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(()) => worker.join().expect("worker panicked after finishing"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked; join propagates the original message.
            worker.join().expect("worker panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: no completion within deadline — sharded run deadlocked");
        }
    }
}

fn conformance_sweep(faulted: bool, cases: u64) {
    let mut rng = SimRng::new(0xC0F0_0D5E ^ u64::from(faulted));
    for case in 0..cases {
        let spec = random_spec(&mut rng, faulted);
        let seed = 1000 + case;
        let label = format!("case {case} ({} routers, faulted={faulted})", spec.routers);
        with_deadline(label.clone(), move || {
            for scheduler in [SchedulerKind::TimerWheel, SchedulerKind::BinaryHeap] {
                let serial = run_case(&spec, 1, scheduler, seed);
                assert!(!serial.records.is_empty(), "{label}: run produced flows");
                for shards in [2, 4] {
                    let sharded = run_case(&spec, shards, scheduler, seed);
                    assert_eq!(
                        serial, sharded,
                        "{label}: {scheduler:?} diverged at {shards} shards"
                    );
                }
            }
        });
    }
}

/// Arena leak-freedom and id stability: with a finite workload run far
/// past completion, every packet id handed out must have been removed
/// again — `packets_in_flight` returns to zero at every shard count —
/// and repeating a run must reproduce the fingerprint byte-for-byte
/// (packet-id assignment per shard namespace is deterministic).
#[test]
fn arena_drains_and_runs_are_repeatable() {
    // A light finite workload driven far past completion: one short
    // transfer per router, generous horizon.
    fn quiescent_run(spec: &TopologySpec, shards: u32) -> (usize, Fingerprint) {
        let spec = spec
            .clone()
            .scheduler(SchedulerKind::TimerWheel)
            .shards(shards);
        let mut sc = spec.build(7);
        for r in 1..spec.routers {
            sc.add_bulk_clients_at(r, 1, 20_000, SimDuration::from_secs(1));
        }
        sc.run_until(SimTime::from_secs(120));
        let mut log = std::mem::take(&mut *sc.log.lock().unwrap());
        log.sort_canonical();
        let links = (0..spec.pipes.len())
            .flat_map(|i| [sc.pipe_link(i), sc.pipe_reverse(i)])
            .map(|l| sc.sim.link_stats(l).clone())
            .collect();
        let fp = Fingerprint {
            records: log.records,
            links,
            taq: Vec::new(),
            faults: Vec::new(),
            events: sc.sim.events_processed(),
            in_flight: sc.sim.packets_in_flight(),
        };
        (sc.sim.packets_in_flight(), fp)
    }

    let mut rng = SimRng::new(0xA12E_4A11);
    let spec = random_spec(&mut rng, false);
    for shards in [1u32, 2, 4] {
        let spec = spec.clone();
        with_deadline(format!("arena drain at {shards} shards"), move || {
            let (in_flight, first) = quiescent_run(&spec, shards);
            assert_eq!(
                in_flight, 0,
                "{shards} shards: {in_flight} packets leaked in the arena"
            );
            let (_, again) = quiescent_run(&spec, shards);
            assert_eq!(first, again, "{shards} shards: rerun diverged");
        });
    }
}

#[test]
fn clean_random_topologies_are_shard_invariant() {
    conformance_sweep(false, 3);
}

#[test]
fn faulted_random_topologies_are_shard_invariant() {
    conformance_sweep(true, 3);
}
