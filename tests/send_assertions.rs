//! Compile-time proof that the simulation stack is `Send`.
//!
//! The sweep runner (taq-bench) moves fully-built scenarios into
//! `std::thread::scope` workers, so everything a run owns — the
//! simulator with its agents, qdiscs and monitors, the flow log, the
//! TAQ state pair, the telemetry hub — must be `Send`. These
//! assertions are evaluated at compile time: a regression that
//! reintroduces an `Rc`/`RefCell` anywhere in the object graph fails
//! this test's *build*, not just its run.

use taq::{TaqConfig, TaqPair, TaqQdisc, TaqReverseQdisc};
use taq_metrics::SliceThroughput;
use taq_sim::{Bandwidth, DumbbellConfig, SimDuration, SimTime, Simulator};
use taq_tcp::TcpConfig;
use taq_telemetry::{shared_sink, RingBufferSink, Telemetry};
use taq_workloads::{DumbbellScenario, DumbbellSpec, BULK_BYTES};

fn assert_send<T: Send>() {}

#[test]
fn simulation_types_are_send() {
    assert_send::<Simulator>();
    assert_send::<TaqQdisc>();
    assert_send::<TaqReverseQdisc>();
    assert_send::<TaqPair>();
    assert_send::<DumbbellScenario>();
    assert_send::<Telemetry>();
    assert_send::<taq_tcp::SharedFlowLog>();
    assert_send::<taq::SharedTaq>();
}

/// The dynamic counterpart: a *fully populated* scenario — TAQ
/// forward/reverse pair sharing state, bulk clients, a throughput
/// monitor, and an active telemetry hub with a sink — built on one
/// thread, moved to another, run there, and inspected back on the
/// first.
#[test]
fn fully_populated_scenario_runs_on_another_thread() {
    let rate = Bandwidth::from_kbps(600);
    let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate)).tcp(TcpConfig::default());

    let telemetry = Telemetry::new();
    let (ring, erased) = shared_sink(RingBufferSink::new(256));
    telemetry.add_shared_sink(erased);

    let pair = TaqPair::new(TaqConfig::for_link(rate));
    let state = pair.state.clone();
    state.lock().unwrap().attach_telemetry(telemetry.clone());

    let mut sc = spec.build_with_reverse(11, Box::new(pair.forward), Box::new(pair.reverse));
    let slices = sc.sim.add_monitor(Box::new(SliceThroughput::new(
        sc.db.bottleneck,
        SimDuration::from_secs(5),
    )));
    sc.add_bulk_clients(8, BULK_BYTES, SimDuration::from_secs(1));

    let sc = std::thread::scope(|scope| {
        scope
            .spawn(move || {
                sc.run_until(SimTime::from_secs(20));
                sc
            })
            .join()
            .expect("worker thread panicked")
    });

    let transmitted = sc.sim.link_stats(sc.db.bottleneck).transmitted_pkts;
    assert!(transmitted > 0, "the remote run moved packets");
    let jain = sc
        .sim
        .monitor::<SliceThroughput>(slices)
        .expect("slice monitor")
        .mean_jain(1, 4, 8);
    assert!((0.0..=1.0).contains(&jain));
    assert!(
        state.lock().unwrap().stats.offered > 0,
        "TAQ state observed from the spawning thread after the run"
    );
    telemetry.flush();
    assert!(
        ring.lock().unwrap().count("classified") > 0,
        "telemetry events crossed the thread boundary"
    );
}
