//! Tracing determinism: attaching the packet-lifecycle tracer neither
//! perturbs a run nor produces scheduling-dependent output.
//!
//! Two properties are pinned:
//!
//! 1. **Observation is free of side effects** — a traced run's
//!    `FlowLog` records and `TaqStats` counters are byte-identical to
//!    the same (seed, config) run with telemetry fully disabled.
//! 2. **The trace itself is deterministic** — the full span dump
//!    (every packet lifecycle through the bottleneck, plus the
//!    sim-time series) is byte-identical across sweep thread counts
//!    (1/2/4) and across the timer-wheel and binary-heap scheduler
//!    backends.

use taq_bench::{build_qdisc, sweep_seeds, Discipline};
use taq_faults::{FaultPlan, GilbertElliott};
use taq_sim::{Bandwidth, DumbbellConfig, SchedulerKind, SimDuration, SimTime, TelemetryBridge};
use taq_tcp::FlowRecord;
use taq_telemetry::{shared_sink, Telemetry};
use taq_trace::{TraceCollector, TraceConfig};
use taq_workloads::DumbbellSpec;

struct TracedRun {
    records: Vec<FlowRecord>,
    taq: taq::TaqStats,
    /// Full JSONL span dump; empty for untraced runs.
    dump: String,
}

/// Runs the faulty bulk-flow workload, optionally with the tracer
/// riding the bottleneck, and returns every comparable output.
fn run_traced(scheduler: SchedulerKind, seed: u64, traced: bool) -> TracedRun {
    let rate = Bandwidth::from_kbps(400);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
    let plan = FaultPlan::none()
        .with_burst_loss(GilbertElliott::bursts(0.02, 6.0))
        .with_duplicate(0.02);
    let mut spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate))
        .scheduler(scheduler)
        .faults(plan);

    let collector = if traced {
        let telemetry = Telemetry::new();
        let (collector, erased) = shared_sink(TraceCollector::new(TraceConfig::default()));
        telemetry.add_shared_sink(erased);
        if let Some(state) = &built.taq_state {
            state.lock().unwrap().attach_telemetry(telemetry.clone());
        }
        spec = spec.telemetry(telemetry.clone());
        Some((telemetry, collector))
    } else {
        None
    };

    let mut sc = spec.build_with_reverse(seed, built.forward, built.reverse);
    if let Some((telemetry, _)) = &collector {
        let bridge = TelemetryBridge::new(telemetry.clone()).only(sc.db.bottleneck);
        sc.sim.add_monitor(Box::new(bridge));
    }
    sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
    sc.run_until(SimTime::from_secs(40));

    let records = sc.log.lock().unwrap().records.clone();
    let taq = built
        .taq_state
        .expect("taq run")
        .lock()
        .unwrap()
        .stats
        .clone();
    let dump = match &collector {
        Some((telemetry, collector)) => {
            telemetry.flush();
            collector.lock().unwrap().dump_string()
        }
        None => String::new(),
    };
    TracedRun { records, taq, dump }
}

/// Property 1: the tracer is a pure observer. Same seeds, same
/// schedulers, with and without the collector attached — the flow log
/// and the TAQ counters must not move by a single byte.
#[test]
fn tracing_leaves_flow_log_and_taq_stats_byte_identical() {
    for scheduler in [SchedulerKind::TimerWheel, SchedulerKind::BinaryHeap] {
        for seed in [3u64, 11] {
            let plain = run_traced(scheduler, seed, false);
            let traced = run_traced(scheduler, seed, true);
            assert!(
                !plain.records.is_empty() && plain.taq.offered > 0,
                "{scheduler:?} seed {seed} produced work"
            );
            assert_eq!(
                plain.records, traced.records,
                "{scheduler:?} seed {seed}: tracing perturbed the flow log"
            );
            assert_eq!(
                plain.taq, traced.taq,
                "{scheduler:?} seed {seed}: tracing perturbed TaqStats"
            );
            // And the observation was real, not a disabled hub.
            assert!(
                traced.dump.contains(r#""record":"span""#),
                "{scheduler:?} seed {seed}: traced run produced no spans"
            );
        }
    }
}

/// Property 2: the span dump is a function of (seed, config) only —
/// byte-identical across sweep thread counts and scheduler backends.
#[test]
fn span_dump_is_byte_identical_across_threads_and_schedulers() {
    let seeds = [3u64, 11];
    let reference: Vec<String> = seeds
        .iter()
        .map(|&seed| run_traced(SchedulerKind::TimerWheel, seed, true).dump)
        .collect();
    for (dump, seed) in reference.iter().zip(seeds) {
        assert!(
            dump.contains(r#""record":"span""#),
            "seed {seed}: reference run produced no spans"
        );
    }
    // Distinct seeds genuinely differ — the comparisons below are not
    // between trivially identical dumps.
    assert_ne!(reference[0], reference[1]);

    for scheduler in [SchedulerKind::TimerWheel, SchedulerKind::BinaryHeap] {
        for threads in [1usize, 2, 4] {
            let dumps = sweep_seeds(&seeds, threads, |seed| {
                run_traced(scheduler, seed, true).dump
            });
            for ((dump, expected), seed) in dumps.iter().zip(&reference).zip(seeds) {
                assert_eq!(
                    dump, expected,
                    "seed {seed} {scheduler:?} threads {threads}: span dump diverged"
                );
            }
        }
    }
}
