//! The mean-field convergence oracle, as a test: the sim-vs-fluid
//! distance must shrink as the flow population doubles.
//!
//! The wire ladder re-measures live (short 2 s horizon, where sampling
//! noise ∝ 1/√(N·K) dominates the chain's fixed structural bias and
//! its decay with `N` is visible); the committed artifact produced by
//! `fluid_validation --full` is additionally parsed and held to the
//! same monotonicity contract. Tolerances are calibrated against the
//! six-seed averages recorded in `results/FLUID_validation.json`.

use taq_bench::{
    bernoulli_wire_run, compare_to_coupled_fluid, compare_to_fluid, default_threads,
    droptail_coupled_run, sweep_indexed, FLUID_LADDER_MS,
};
use taq_telemetry::Value;

/// Seeds matching the committed artifact's default ladder averaging.
const SEEDS: [u64; 6] = [11, 12, 13, 14, 15, 16];

/// Adjacent ladder points may wiggle by this much (seed noise) as long
/// as the overall trend shrinks.
const STEP_SLACK: f64 = 0.02;

/// Seed-averaged wire L1 ladder over `flows_ladder` at `wire_p`, every
/// (N, seed) cell fanned across `threads`.
fn wire_l1_ladder(wire_p: f64, flows_ladder: &[usize], threads: usize) -> Vec<f64> {
    let cells: Vec<(usize, u64)> = flows_ladder
        .iter()
        .flat_map(|&n| SEEDS.iter().map(move |&s| (n, s)))
        .collect();
    let l1s = sweep_indexed(&cells, threads, |_, &(flows, seed)| {
        let obs = bernoulli_wire_run(seed, wire_p, flows, FLUID_LADDER_MS)
            .expect("wire run moved traffic");
        (flows, compare_to_fluid(&obs).l1)
    });
    flows_ladder
        .iter()
        .map(|&n| {
            let cell: Vec<f64> = l1s
                .iter()
                .filter(|(flows, _)| *flows == n)
                .map(|(_, l1)| *l1)
                .collect();
            cell.iter().sum::<f64>() / cell.len() as f64
        })
        .collect()
}

fn assert_shrinking(ladder: &[usize], l1: &[f64], min_drop: f64, what: &str) {
    for (w, ns) in l1.windows(2).zip(ladder.windows(2)) {
        assert!(
            w[1] <= w[0] + STEP_SLACK,
            "{what}: L1 rose beyond slack {} → {} flows: {:.4} → {:.4} (ladder {l1:?})",
            ns[0],
            ns[1],
            w[0],
            w[1]
        );
    }
    let (first, last) = (l1[0], l1[l1.len() - 1]);
    assert!(
        last <= first - min_drop,
        "{what}: no overall shrink across {} doublings: {first:.4} → {last:.4} (need −{min_drop})",
        l1.len() - 1
    );
}

#[test]
fn wire_l1_shrinks_as_population_doubles_below_tipping() {
    let ladder = [8, 16, 32, 64];
    let l1 = wire_l1_ladder(0.05, &ladder, default_threads());
    // Artifact calibration (6 seeds): 0.293 → 0.238 over these points.
    assert_shrinking(&ladder, &l1, 0.02, "wire p=0.05");
}

#[test]
fn wire_l1_shrinks_as_population_doubles_above_tipping() {
    let ladder = [8, 16, 32, 64];
    let l1 = wire_l1_ladder(0.18, &ladder, default_threads());
    // Artifact calibration (6 seeds): 0.344 → 0.313 over these points.
    assert_shrinking(&ladder, &l1, 0.01, "wire p=0.18");
}

#[test]
fn coupled_prediction_tightens_as_population_doubles() {
    // The coupled fixed point gets no input from the run, so both the
    // density distance and the loss-rate error are genuine prediction
    // errors; burstiness-driven deviations average out with N.
    // Artifact calibration (6 seeds, 40 s): L1 0.39 → 0.14, p_err
    // 0.030 → 0.002 from N=8 to N=128.
    let share_pps = 4.5;
    let ladder = [8, 32, 128];
    let cells: Vec<(usize, u64)> = ladder
        .iter()
        .flat_map(|&n| [11u64, 12, 13].iter().map(move |&s| (n, s)))
        .collect();
    let runs = sweep_indexed(&cells, default_threads(), |_, &(flows, seed)| {
        let obs = droptail_coupled_run(seed, flows, share_pps, 40_000)
            .expect("coupled run moved traffic");
        let cmp = compare_to_coupled_fluid(&obs, share_pps);
        (flows, cmp.l1, cmp.p_err)
    });
    let avg = |n: usize, f: &dyn Fn(&(usize, f64, f64)) -> f64| {
        let cell: Vec<f64> = runs.iter().filter(|r| r.0 == n).map(f).collect();
        cell.iter().sum::<f64>() / cell.len() as f64
    };
    let (l1_first, l1_last) = (avg(8, &|r| r.1), avg(128, &|r| r.1));
    let (p_first, p_last) = (avg(8, &|r| r.2), avg(128, &|r| r.2));
    assert!(
        l1_last <= l1_first - 0.1,
        "coupled L1 should drop sharply with N: {l1_first:.4} → {l1_last:.4}"
    );
    assert!(
        p_last < p_first,
        "coupled p_err should tighten with N: {p_first:.4} → {p_last:.4}"
    );
    assert!(
        p_last < 0.02,
        "large-N loss-rate prediction lands within 2 pts: {p_last:.4}"
    );
}

#[test]
fn ladder_is_deterministic_across_sweep_threads() {
    // The oracle's numbers must be exactly reproducible f64s no matter
    // how the sweep is fanned: same seeds, same bits.
    let cells: Vec<(usize, u64)> = vec![(8, 11), (8, 12), (16, 11), (16, 12)];
    let run = |threads: usize| -> Vec<(u64, u64, u64)> {
        sweep_indexed(&cells, threads, |_, &(flows, seed)| {
            let obs =
                bernoulli_wire_run(seed, 0.05, flows, FLUID_LADDER_MS).expect("traffic flows");
            let cmp = compare_to_fluid(&obs);
            (
                cmp.l1.to_bits(),
                obs.realized_p.to_bits(),
                obs.jain.to_bits(),
            )
        })
    };
    let one = run(1);
    assert_eq!(one, run(2), "threads=2 must reproduce threads=1 bits");
    assert_eq!(one, run(4), "threads=4 must reproduce threads=1 bits");
}

/// The committed artifact: parsed, then held to the convergence and
/// latency contracts the oracle exists to enforce.
#[test]
fn committed_artifact_shows_convergence_and_fast_solves() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/FLUID_validation.json");
    let raw = std::fs::read_to_string(path).expect("committed results/FLUID_validation.json");
    let doc = Value::parse(&raw).expect("artifact parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("taq-fluid-validation-v1")
    );

    let regimes = doc
        .get("regimes")
        .and_then(Value::as_array)
        .expect("regimes array");
    assert_eq!(
        regimes.len(),
        2,
        "one regime each side of the tipping point"
    );
    for regime in regimes {
        let name = regime.get("name").and_then(Value::as_str).unwrap_or("?");
        let points = regime
            .get("points")
            .and_then(Value::as_array)
            .expect("ladder points");
        assert!(points.len() >= 4, "{name}: at least three doublings");
        let l1: Vec<f64> = points
            .iter()
            .map(|p| p.get("l1").and_then(Value::as_f64).expect("l1"))
            .collect();
        let flows: Vec<usize> = points
            .iter()
            .map(|p| p.get("flows").and_then(Value::as_u64).expect("flows") as usize)
            .collect();
        assert!(
            flows.windows(2).all(|w| w[1] == 2 * w[0]),
            "{name}: ladder doubles: {flows:?}"
        );
        assert_shrinking(&flows, &l1, 0.02, name);
    }

    let million = doc.get("million_flow").expect("million_flow section");
    let solve_ms = million
        .get("solve_ms")
        .and_then(Value::as_f64)
        .expect("solve_ms");
    assert!(
        solve_ms <= 100.0,
        "million-flow stationary must solve within 100 ms: {solve_ms:.2} ms"
    );
    assert_eq!(
        million.get("within_budget").and_then(Value::as_bool),
        Some(true)
    );

    // The tipping section's three model readings agree with each other
    // and the simulated crossing lands in their neighborhood.
    let tipping = doc.get("tipping").expect("tipping section");
    let read = |k: &str| {
        tipping
            .get(k)
            .and_then(Value::as_f64)
            .expect("tipping field")
    };
    let exact = read("fluid_exact");
    assert!((exact - read("fluid_evolution")).abs() < 5e-3);
    assert!((exact - read("analysis_majority")).abs() < 1e-6);
    let sim = read("sim_crossing");
    assert!(
        (sim - exact).abs() < 0.05,
        "simulated tipping {sim:.4} near fluid {exact:.4}"
    );
}
