//! Integration: explicit admission-rejection feedback (§4.3's
//! expected-wait-time notice) end to end.

use taq::{TaqConfig, TaqPair};
use taq_sim::{Bandwidth, Dumbbell, DumbbellConfig, SimDuration, SimTime, Simulator};
use taq_tcp::{new_flow_log, ClientHost, Request, ServerHost, TcpConfig};

/// Drives heavy synthetic loss into the meter, then opens a client and
/// measures how it learns about rejection.
fn run(feedback: bool) -> (u64, u64, bool) {
    let rate = Bandwidth::from_kbps(600);
    let mut cfg = TaqConfig::for_link(rate).with_admission_control();
    cfg.reject_feedback = feedback;
    cfg.admission_twait = SimDuration::from_secs(2);
    let pair = TaqPair::new(cfg);
    let state = pair.state.clone();
    let mut sim = Simulator::new(3);
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let db = Dumbbell::build(
        &mut sim,
        topo,
        Box::new(pair.forward),
        Box::new(pair.reverse),
    );
    let server = sim.add_agent(Box::new(ServerHost::new(TcpConfig::default(), 80)));
    db.attach_left(&mut sim, server);

    let log = new_flow_log();
    let mut client = ClientHost::new(TcpConfig::default(), server, 80, 1, log.clone());
    client.push_request(Request {
        tag: 1,
        bytes: 10_000,
    });
    let node = sim.add_agent(Box::new(client));
    db.attach_right(&mut sim, node);
    // Pin the admission meter at heavy loss just before the SYN
    // arrives (the external-loss entry point; the admission example
    // exercises the organic overload path).
    {
        let mut st = state.lock().unwrap();
        for _ in 0..200 {
            st.record_external_loss(SimTime::ZERO);
        }
    }
    sim.schedule_start(node, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(30));

    let client_ref = sim.agent::<ClientHost>(node).unwrap();
    let rejections = client_ref.rejections_seen;
    let st = state.lock().unwrap();
    let done = log
        .lock()
        .unwrap()
        .records
        .iter()
        .any(|r| r.completed_at.is_some());
    (st.stats.syns_rejected, rejections, done)
}

#[test]
fn feedback_notices_reach_the_client_and_it_still_completes() {
    let (rejected, seen, done) = run(true);
    assert!(rejected > 0, "the first SYN is rejected");
    assert!(
        seen > 0,
        "the client received explicit rejection notices ({rejected} rejected)"
    );
    assert!(done, "the transfer completes after the Twait window");
}

#[test]
fn without_feedback_rejection_is_silent() {
    let (rejected, seen, done) = run(false);
    assert!(rejected > 0);
    assert_eq!(seen, 0, "no notices without the feedback option");
    assert!(done, "blind retries still get in eventually");
}
