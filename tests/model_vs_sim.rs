//! Validating the Markov models against simulation under the models'
//! *own* assumptions: independent per-packet loss with probability `p`
//! (a Bernoulli wire, no queue contention), windows capped at Wmax, and
//! a base timeout near 2×RTT.
//!
//! This is the controlled companion to the Figure 6 experiment (which
//! uses contention-induced loss): here `p` is set exactly, so the
//! comparison isolates the chain itself.

use taq_metrics::EpochActivity;
use taq_model::{ChainFamily, FluidModel, FullModel, LossFeedback, PartialModel};
use taq_sim::{Bandwidth, DumbbellConfig, SimDuration, SimTime, UnboundedFifo};
use taq_tcp::TcpConfig;
use taq_workloads::{DumbbellScenario, BULK_BYTES};

const WMAX: usize = 6;

/// Runs independent capped flows over an uncontended Bernoulli-loss
/// bottleneck and returns the empirical packets-per-epoch distribution
/// alongside the realized loss rate.
///
/// Errors instead of dividing 0/0 when the run moved no traffic at all
/// (e.g. a horizon shorter than the flow stagger).
fn simulate(p: f64, flows: usize, secs: u64) -> Result<(Vec<f64>, f64), String> {
    let rate = Bandwidth::from_mbps(10); // Fast: no queueing, no contention.
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let tcp = TcpConfig {
        max_window_segments: WMAX as u32,
        min_rto: SimDuration::from_millis(400), // The model's T0 = 2×RTT.
        ..TcpConfig::default()
    };
    let mut sc = DumbbellScenario::new(9, topo, Box::new(UnboundedFifo::new()), tcp);
    sc.sim.set_link_loss(sc.db.bottleneck, p);
    let epoch = SimDuration::from_millis(200);
    let activity = sc
        .sim
        .add_monitor(Box::new(EpochActivity::new(sc.db.bottleneck, epoch, WMAX)));
    sc.add_bulk_clients(flows, BULK_BYTES, SimDuration::from_secs(1));
    let horizon = SimTime::from_secs(secs);
    sc.run_until(horizon);
    let stats = sc.sim.link_stats(sc.db.bottleneck);
    let offered = stats.wire_lost_pkts + stats.transmitted_pkts;
    if offered == 0 {
        return Err(format!(
            "no traffic offered (p {p}, {flows} flows, {secs} s)"
        ));
    }
    let realized = stats.wire_lost_pkts as f64 / offered as f64;
    let dist = sc
        .sim
        .monitor_mut::<EpochActivity>(activity)
        .expect("epoch monitor")
        .distribution(horizon);
    Ok((dist, realized))
}

#[test]
fn bernoulli_loss_rate_is_realized() {
    let (_, realized) = simulate(0.15, 10, 120).expect("traffic flows");
    assert!(
        (realized - 0.15).abs() < 0.02,
        "wire loss realizes the configured p: {realized}"
    );
}

#[test]
fn models_bracket_simulated_silence_under_iid_loss() {
    // The two models bound reality from opposite sides: the partial
    // model understates silence (its aggregated b* redraws a fresh
    // entry-conditioned dwell on every consecutive failure), while the
    // full model overstates it (it sends every low-window loss straight
    // to a timeout, where real TCP's cumulative ACKs often slide the
    // window past a single hole). Simulation lands between them.
    for &p in &[0.1, 0.2, 0.3] {
        let (sim, realized) = simulate(p, 20, 300).expect("traffic flows");
        let full = FullModel::new(realized, WMAX as u32, 3).n_sent_distribution();
        let partial = PartialModel::new(realized, WMAX as u32).n_sent_distribution();
        assert!(
            partial[0] - 0.05 <= sim[0],
            "p={p}: partial model silence {:.3} should lower-bound sim {:.3}",
            partial[0],
            sim[0]
        );
        assert!(
            sim[0] <= full[0] + 0.05,
            "p={p}: full model silence {:.3} should upper-bound sim {:.3}",
            full[0],
            sim[0]
        );
    }
}

#[test]
fn timeout_mass_grows_sharply_with_p_in_simulation() {
    // The model's tipping-point story, observed in simulation: silence
    // fraction grows steeply between p = 0.05 and p = 0.25.
    let (lo, _) = simulate(0.05, 20, 200).expect("traffic flows");
    let (hi, _) = simulate(0.25, 20, 200).expect("traffic flows");
    assert!(
        hi[0] > 2.5 * lo[0],
        "silence at p=0.25 ({:.3}) should dwarf p=0.05 ({:.3})",
        hi[0],
        lo[0]
    );
}

#[test]
fn low_loss_concentrates_at_wmax_in_simulation() {
    let (sim, _) = simulate(0.01, 10, 200).expect("traffic flows");
    assert!(
        sim[WMAX] > 0.5,
        "at 1% loss flows mostly sit at the window cap: {sim:?}"
    );
}

#[test]
fn zero_traffic_is_an_explicit_error() {
    // A horizon shorter than every flow's start offset moves nothing;
    // the realized loss rate must be a reported error, not 0/0 = NaN.
    let err = simulate(0.1, 2, 0).expect_err("no packet can move in 0 s");
    assert!(
        err.contains("no traffic"),
        "diagnostic names the cause: {err}"
    );
}

#[test]
fn fluid_stationary_matches_full_model_dtmc_on_uncoupled_wire() {
    // On a Bernoulli wire the fluid model's stationary density IS the
    // full chain's DTMC stationary vector — the ODE adds nothing at
    // equilibrium. Cross-check the two solvers (dense linear solve
    // inside `Dtmc::stationary` vs the fluid summarizer's plumbing)
    // against each other to 1e-6 total variation.
    for &p in &[0.02, 0.1027, 0.25] {
        let fluid = FluidModel::new(
            ChainFamily::Full {
                wmax: WMAX as u32,
                max_backoff: 3,
            },
            LossFeedback::Wire { p },
            50.0,
            0.2,
        );
        let st = fluid.stationary();
        let reference = FullModel::new(p, WMAX as u32, 3);
        let pi = reference.stationary();
        assert_eq!(st.density.len(), pi.len(), "state spaces agree");
        let tv = 0.5
            * st.density
                .iter()
                .zip(&pi)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(tv < 1e-6, "p={p}: fluid vs DTMC stationary TV {tv:.2e}");
        // And the aggregated observables derived from it line up too.
        let n_sent = reference.n_sent_distribution();
        let l1: f64 = st
            .n_sent
            .iter()
            .zip(&n_sent)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-9, "p={p}: n_sent aggregation L1 {l1:.2e}");
    }
}
