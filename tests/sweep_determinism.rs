//! Cross-thread determinism: a run's outputs depend only on (seed,
//! config), never on which thread executed it or what else ran
//! concurrently.
//!
//! The same seeds are run serially (threads = 1) and through the sweep
//! pool (threads = 2); per-seed `FlowLog` completion records and
//! `TaqStats` snapshots must be byte-identical, and the merged result
//! order must match the input seed order regardless of scheduling.

use taq_bench::{build_qdisc, sweep_seeds, Discipline};
use taq_sim::{Bandwidth, DumbbellConfig, SimDuration, SimTime};
use taq_tcp::FlowRecord;
use taq_workloads::DumbbellSpec;

/// One run's comparable outputs: every flow-log record plus the TAQ
/// counter snapshot. Both types derive `PartialEq`, so equality here
/// is field-exact.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    seed: u64,
    records: Vec<FlowRecord>,
    taq: taq::TaqStats,
}

fn run(spec: &DumbbellSpec, seed: u64) -> RunFingerprint {
    let rate = spec.topo.bottleneck_rate;
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
    let mut sc = spec.build_with_reverse(seed, built.forward, built.reverse);
    sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
    sc.run_until(SimTime::from_secs(40));
    let records = sc.log.lock().unwrap().records.clone();
    let taq = built
        .taq_state
        .expect("taq run")
        .lock()
        .unwrap()
        .stats
        .clone();
    RunFingerprint { seed, records, taq }
}

#[test]
fn serial_and_parallel_sweeps_agree_exactly() {
    let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(400)));
    let seeds = [3u64, 7, 11, 13];

    let serial = sweep_seeds(&seeds, 1, |seed| run(&spec, seed));
    let parallel = sweep_seeds(&seeds, 2, |seed| run(&spec, seed));

    assert_eq!(serial.len(), seeds.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.seed, seeds[i], "results come back in input order");
        assert!(
            !s.records.is_empty() && s.taq.offered > 0,
            "seed {} produced work",
            s.seed
        );
        assert_eq!(s, p, "seed {} diverged across thread counts", s.seed);
    }

    // Distinct seeds genuinely differ — the equality above is not
    // comparing trivially identical runs.
    assert_ne!(serial[0].records, serial[1].records);
}
