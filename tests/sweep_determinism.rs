//! Cross-thread determinism: a run's outputs depend only on (seed,
//! config), never on which thread executed it or what else ran
//! concurrently.
//!
//! The same seeds are run serially (threads = 1) and through the sweep
//! pool (threads = 2); per-seed `FlowLog` completion records and
//! `TaqStats` snapshots must be byte-identical, and the merged result
//! order must match the input seed order regardless of scheduling.

use taq_bench::{build_qdisc, sweep_seeds, Discipline};
use taq_faults::{FaultPlan, FaultStats, GilbertElliott};
use taq_sim::{Bandwidth, DumbbellConfig, SchedulerKind, SimDuration, SimRng, SimTime};
use taq_tcp::FlowRecord;
use taq_workloads::{weblog, DumbbellSpec, ObjectSizeModel, QdiscSpec};

/// One run's comparable outputs: every flow-log record plus the TAQ
/// counter snapshot. Both types derive `PartialEq`, so equality here
/// is field-exact.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    seed: u64,
    records: Vec<FlowRecord>,
    taq: taq::TaqStats,
}

fn run(spec: &DumbbellSpec, seed: u64) -> RunFingerprint {
    let rate = spec.topo.bottleneck_rate;
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
    let mut sc = spec.build_with_reverse(seed, built.forward, built.reverse);
    sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
    sc.run_until(SimTime::from_secs(40));
    let records = sc.log.lock().unwrap().records.clone();
    let taq = built
        .taq_state
        .expect("taq run")
        .lock()
        .unwrap()
        .stats
        .clone();
    RunFingerprint { seed, records, taq }
}

/// The same workload as [`run`], but through the generic topology
/// engine: the dumbbell expressed as a two-router `TopologySpec`, with
/// the TAQ pipe built from a `QdiscSpec` instead of the bench helper.
fn run_topo(spec: &DumbbellSpec, seed: u64) -> RunFingerprint {
    let rate = spec.topo.bottleneck_rate;
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let mut sc = spec.to_topology(QdiscSpec::taq(buffer)).build(seed);
    sc.add_bulk_clients_at(1, 10, 40_000, SimDuration::from_secs(1));
    sc.run_until(SimTime::from_secs(40));
    let records = sc.log.lock().unwrap().records.clone();
    let taq = sc
        .taq_state(0)
        .expect("taq pipe")
        .lock()
        .unwrap()
        .stats
        .clone();
    RunFingerprint { seed, records, taq }
}

/// Conformance: the dumbbell expressed as a `TopologySpec` is
/// byte-identical to the `DumbbellSpec` code path — same `FlowLog`
/// records, same `TaqStats` — on both scheduler backends and at every
/// sweep thread count. This pins the topology engine as a strict
/// generalization of everything measured on the dumbbell.
#[test]
fn dumbbell_as_topology_is_byte_identical() {
    let seeds = [3u64, 7, 11];
    for scheduler in [SchedulerKind::TimerWheel, SchedulerKind::BinaryHeap] {
        let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(400)))
            .scheduler(scheduler);
        for threads in [1usize, 2, 4] {
            let dumbbell = sweep_seeds(&seeds, threads, |seed| run(&spec, seed));
            let topo = sweep_seeds(&seeds, threads, |seed| run_topo(&spec, seed));
            for (d, t) in dumbbell.iter().zip(&topo) {
                assert!(
                    !d.records.is_empty() && d.taq.offered > 0,
                    "seed {} produced work",
                    d.seed
                );
                assert_eq!(
                    d, t,
                    "seed {} {scheduler:?} threads {threads}: topology diverged from dumbbell",
                    d.seed
                );
            }
        }
    }
}

/// Conformance under faults: packet faults (burst loss + duplication)
/// and the link-schedule fault driver replay identically through both
/// code paths, including the `FaultStats` counters and the total event
/// count.
#[test]
fn faulty_dumbbell_as_topology_is_byte_identical() {
    let plan = FaultPlan::none()
        .with_burst_loss(GilbertElliott::bursts(0.02, 6.0))
        .with_duplicate(0.02)
        .with_rate_jitter(
            SimDuration::from_millis(500),
            0.7,
            1.3,
            SimTime::from_secs(20),
        );
    let rate = Bandwidth::from_kbps(400);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate)).faults(plan);

    for seed in [3u64, 11] {
        let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
        let mut db_sc = spec.build_with_reverse(seed, built.forward, built.reverse);
        db_sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
        db_sc.run_until(SimTime::from_secs(40));
        let db_fp = FullFingerprint {
            records: db_sc.log.lock().unwrap().records.clone(),
            taq: built.taq_state.unwrap().lock().unwrap().stats.clone(),
            faults: db_sc
                .fault_stats
                .as_ref()
                .map(|s| s.lock().unwrap().clone()),
            events: db_sc.sim.events_processed(),
        };

        let mut topo_sc = spec.to_topology(QdiscSpec::taq(buffer)).build(seed);
        topo_sc.add_bulk_clients_at(1, 10, 40_000, SimDuration::from_secs(1));
        topo_sc.run_until(SimTime::from_secs(40));
        let topo_fp = FullFingerprint {
            records: topo_sc.log.lock().unwrap().records.clone(),
            taq: topo_sc
                .taq_state(0)
                .expect("taq pipe")
                .lock()
                .unwrap()
                .stats
                .clone(),
            faults: topo_sc.pipe_faults[0]
                .as_ref()
                .map(|s| s.lock().unwrap().clone()),
            events: topo_sc.sim.events_processed(),
        };

        let f = db_fp.faults.as_ref().expect("fault stats present");
        assert!(f.total() > 0, "seed {seed} injected faults");
        assert!(f.rate_changes > 0, "seed {seed} drove the link schedule");
        assert_eq!(db_fp, topo_fp, "seed {seed}: faulty topology diverged");
    }
}

#[test]
fn serial_and_parallel_sweeps_agree_exactly() {
    let spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(Bandwidth::from_kbps(400)));
    let seeds = [3u64, 7, 11, 13];

    let serial = sweep_seeds(&seeds, 1, |seed| run(&spec, seed));
    let parallel = sweep_seeds(&seeds, 2, |seed| run(&spec, seed));

    assert_eq!(serial.len(), seeds.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.seed, seeds[i], "results come back in input order");
        assert!(
            !s.records.is_empty() && s.taq.offered > 0,
            "seed {} produced work",
            s.seed
        );
        assert_eq!(s, p, "seed {} diverged across thread counts", s.seed);
    }

    // Distinct seeds genuinely differ — the equality above is not
    // comparing trivially identical runs.
    assert_ne!(serial[0].records, serial[1].records);
}

/// The three scenario shapes the scheduler-equivalence suite pins:
/// Figure 1-style flow churn, the Figure 8 many-flow regime, and a
/// faulty link.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// Short web downloads with heavy flow churn (fig01 shape).
    Churn,
    /// Many long-lived flows squeezed below one packet per RTT
    /// (fig08 shape).
    ManyFlow,
    /// Bulk flows through a bursty-loss, duplicating link.
    Faults,
}

/// Every output the run produces that experiments consume.
#[derive(Debug, PartialEq)]
struct FullFingerprint {
    records: Vec<FlowRecord>,
    taq: taq::TaqStats,
    faults: Option<FaultStats>,
    events: u64,
}

fn run_shape(shape: Shape, scheduler: SchedulerKind, seed: u64) -> FullFingerprint {
    let rate = Bandwidth::from_kbps(400);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let built = build_qdisc(Discipline::Taq, rate, buffer, seed);
    let mut spec = DumbbellSpec::new(DumbbellConfig::with_rtt_200ms(rate)).scheduler(scheduler);
    if matches!(shape, Shape::Faults) {
        spec = spec.faults(
            FaultPlan::none()
                .with_burst_loss(GilbertElliott::bursts(0.02, 6.0))
                .with_duplicate(0.02),
        );
    }
    let mut sc = spec.build_with_reverse(seed, built.forward, built.reverse);
    match shape {
        Shape::Churn => {
            let cfg = weblog::WebLogConfig {
                duration: SimDuration::from_secs(30),
                clients: 20,
                requests_per_sec: 4.0,
                sizes: ObjectSizeModel::web_default(),
            };
            let mut rng = SimRng::new(seed ^ 7);
            let log = weblog::generate(&cfg, &mut rng);
            for (_client, entries) in weblog::by_client(&log) {
                sc.add_scheduled_client(&entries, 4, SimTime::ZERO);
            }
            sc.run_until(SimTime::from_secs(40));
        }
        Shape::ManyFlow => {
            sc.add_bulk_clients(40, 20_000, SimDuration::from_secs(1));
            sc.run_until(SimTime::from_secs(30));
        }
        Shape::Faults => {
            sc.add_bulk_clients(10, 40_000, SimDuration::from_secs(1));
            sc.run_until(SimTime::from_secs(40));
        }
    }
    let records = sc.log.lock().unwrap().records.clone();
    let taq = built
        .taq_state
        .expect("taq run")
        .lock()
        .unwrap()
        .stats
        .clone();
    let faults = sc.fault_stats.as_ref().map(|s| s.lock().unwrap().clone());
    let events = sc.sim.events_processed();
    FullFingerprint {
        records,
        taq,
        faults,
        events,
    }
}

/// The timer wheel is a drop-in replacement for the binary heap: for
/// every scenario shape, both schedulers produce byte-identical flow
/// logs, TAQ counters, and fault counters, across sweep thread counts.
#[test]
fn timer_wheel_matches_binary_heap_across_scenarios() {
    for shape in [Shape::Churn, Shape::ManyFlow, Shape::Faults] {
        let seeds = [3u64, 11];
        for threads in [1usize, 2] {
            let wheel = sweep_seeds(&seeds, threads, |seed| {
                run_shape(shape, SchedulerKind::TimerWheel, seed)
            });
            let heap = sweep_seeds(&seeds, threads, |seed| {
                run_shape(shape, SchedulerKind::BinaryHeap, seed)
            });
            for ((w, h), seed) in wheel.iter().zip(&heap).zip(seeds) {
                assert!(
                    !w.records.is_empty() && w.taq.offered > 0,
                    "{shape:?} seed {seed} produced work"
                );
                if matches!(shape, Shape::Faults) {
                    let f = w.faults.as_ref().expect("fault stats present");
                    assert!(f.total() > 0, "{shape:?} seed {seed} injected faults");
                }
                assert_eq!(
                    w, h,
                    "{shape:?} seed {seed} threads {threads}: schedulers diverged"
                );
            }
        }
    }
}
