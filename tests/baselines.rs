//! Integration: the §2.4 baseline comparison and trace-based
//! diagnostics, end to end.

use taq_bench::{fairness_run, Discipline, FairnessRunConfig};
use taq_sim::{Bandwidth, DumbbellConfig, PacketTrace, SimDuration, SimTime};
use taq_tcp::TcpConfig;
use taq_workloads::{DumbbellScenario, BULK_BYTES};

/// §2.4: in the sub-packet regime RED offers only marginal gains over
/// DropTail and nothing approaching TAQ. (Our SFQ implementation, with
/// per-bucket longest-queue drops, genuinely behaves like per-flow FQ
/// and does better than the paper's ns2 SFQ — a documented deviation —
/// so the assertion pins the RED ≈ DT part and TAQ's dominance.)
#[test]
fn red_is_close_to_droptail_and_taq_dominates() {
    let cfg = FairnessRunConfig::new(42, Bandwidth::from_kbps(600), 60, SimTime::from_secs(240));
    let dt = fairness_run(&cfg, Discipline::DropTail);
    let red = fairness_run(&cfg, Discipline::Red);
    let taq = fairness_run(&cfg, Discipline::Taq);
    assert!(
        (red.short_term_jain - dt.short_term_jain).abs() < 0.45,
        "RED stays in DropTail's neighbourhood: {:.3} vs {:.3}",
        red.short_term_jain,
        dt.short_term_jain
    );
    assert!(
        taq.short_term_jain > dt.short_term_jain + 0.3
            && taq.short_term_jain > red.short_term_jain + 0.15,
        "TAQ dominates both baselines: taq {:.3}, red {:.3}, dt {:.3}",
        taq.short_term_jain,
        red.short_term_jain,
        dt.short_term_jain
    );
    // All disciplines keep the link busy (the paper: utilization stays
    // high even as fairness collapses).
    for (name, r) in [("dt", &dt), ("red", &red), ("taq", &taq)] {
        assert!(r.utilization > 0.9, "{name} utilization {}", r.utilization);
    }
}

/// The paper's pcap-style diagnosis, mechanized: under DropTail in the
/// sub-packet regime, flow traces show long silences and heavy
/// retransmission; the same trace under TAQ shows bounded silences.
#[test]
fn packet_traces_expose_silences_and_retransmissions() {
    let run = |discipline: Discipline| {
        let rate = Bandwidth::from_kbps(600);
        let built = taq_bench::build_qdisc(discipline, rate, 30, 7);
        let topo = DumbbellConfig::with_rtt_200ms(rate);
        let mut sc = DumbbellScenario::new_with_reverse(
            7,
            topo,
            built.forward,
            built.reverse,
            TcpConfig::default(),
        );
        let trace = sc.sim.add_monitor(Box::new(PacketTrace::new(
            Some(sc.db.bottleneck),
            2_000_000,
        )));
        sc.add_bulk_clients(60, BULK_BYTES, SimDuration::from_secs(2));
        sc.run_until(SimTime::from_secs(120));
        let trace = sc.sim.monitor::<PacketTrace>(trace).expect("trace monitor");
        assert!(!trace.truncated(), "capture buffer sized generously");
        trace.flow_summaries()
    };
    let dt = run(Discipline::DropTail);
    let taq = run(Discipline::Taq);

    let worst_silence = |summaries: &std::collections::HashMap<_, taq_sim::FlowTraceSummary>| {
        summaries
            .values()
            .map(|s| s.longest_silence)
            .max()
            .unwrap_or(SimDuration::ZERO)
    };
    let dt_worst = worst_silence(&dt);
    let taq_worst = worst_silence(&taq);
    assert!(
        dt_worst > SimDuration::from_secs(8),
        "DropTail traces show long silences: {dt_worst}"
    );
    assert!(
        taq_worst < dt_worst,
        "TAQ bounds the worst silence: {taq_worst} vs {dt_worst}"
    );
    // Retransmissions are visible in both traces (the regime is lossy).
    let retx: u64 = dt.values().map(|s| s.retransmissions).sum();
    assert!(retx > 100, "DropTail retransmissions visible: {retx}");
    // Every long-lived flow appears in the trace.
    assert_eq!(dt.len(), 60);
}
