//! Batch-execution conformance: the slot-batch drain in
//! `Simulator::run_until` and the batched qdisc drains are pure
//! mechanical optimizations — every observable must match the
//! one-event-at-a-time reference exactly.
//!
//! Two angles:
//!
//! - whole-engine: random topologies run to quiescence once through the
//!   batched `run_until` and once through a manual [`Simulator::step`]
//!   loop, on both scheduler backends, comparing the full recorded
//!   event trace (order included), the flow log, per-link counters,
//!   TAQ statistics and the event count;
//! - qdisc-level: a TAQ pair under random enqueue/drain churn must hand
//!   out the identical packet sequence from `dequeue_batch` as from
//!   repeated `dequeue`, with identical end-of-run statistics.

use taq::{TaqConfig, TaqPair};
use taq_sim::{
    Bandwidth, EventRecorder, FlowKey, LinkStats, NodeId, PacketArena, PacketBuilder, PacketId,
    Qdisc, RecordedEvent, SchedulerKind, SimDuration, SimRng, SimTime,
};
use taq_tcp::FlowRecord;
use taq_workloads::{PipeSpec, QdiscSpec, TopologySpec};

/// Everything a serial run exposes, including the exact monitor trace.
#[derive(Debug, PartialEq)]
struct Trace {
    events: Vec<RecordedEvent>,
    records: Vec<FlowRecord>,
    links: Vec<LinkStats>,
    taq: Vec<Option<taq::TaqStats>>,
    processed: u64,
}

/// Draws a connected spanning tree over 3–5 routers with mixed
/// disciplines (TAQ included) — the same family the shard-conformance
/// suite uses, kept small enough to run to quiescence quickly.
fn random_spec(rng: &mut SimRng) -> TopologySpec {
    let routers = 3 + rng.next_below(3) as usize; // 3..=5
    let rates = [400u64, 600, 800];
    let delays = [10u64, 24, 48];
    let mut pipes = Vec::new();
    for i in 1..routers {
        let parent = rng.next_below(i as u64) as usize;
        let rate = Bandwidth::from_kbps(rates[rng.next_below(3) as usize]);
        let delay = SimDuration::from_millis(delays[rng.next_below(3) as usize]);
        let buffer = rate.packets_per(SimDuration::from_millis(200), 500).max(8);
        let qdisc = match rng.next_below(3) {
            0 => QdiscSpec::DropTail {
                buffer_pkts: buffer,
            },
            1 => QdiscSpec::Sfq {
                buffer_pkts: buffer,
            },
            _ => QdiscSpec::taq(buffer),
        };
        pipes.push(PipeSpec::new(parent, i, rate, delay, qdisc));
    }
    TopologySpec::new(routers, pipes)
}

/// Far enough out that every transfer in the fixture completes long
/// before it — both drivers run the event queue dry.
const HORIZON: SimTime = SimTime::from_secs(600);

/// Runs `spec` to quiescence and fingerprints it. When `batched`, the
/// engine's own `run_until` (the slot-batch drain) does all the work;
/// otherwise a manual `step` loop pre-drains the queue one event at a
/// time and `run_until` only performs the end-of-run bookkeeping
/// (client flush, clock advance) on an empty queue.
fn run_case(spec: &TopologySpec, scheduler: SchedulerKind, batched: bool, seed: u64) -> Trace {
    let spec = spec.clone().scheduler(scheduler);
    let mut sc = spec.build(seed);
    let recorder = sc.sim.add_monitor(Box::new(EventRecorder::default()));
    for r in 1..spec.routers {
        sc.add_bulk_clients_at(r, 2, 150_000, SimDuration::from_secs(1));
    }
    if !batched {
        while sc.sim.step() {}
        assert!(
            sc.sim.now() < HORIZON,
            "fixture must quiesce before the horizon for the comparison to be fair"
        );
    }
    sc.run_until(HORIZON);
    let log = std::mem::take(&mut *sc.log.lock().unwrap());
    let links = (0..spec.pipes.len())
        .flat_map(|i| [sc.pipe_link(i), sc.pipe_reverse(i)])
        .map(|l| sc.sim.link_stats(l).clone())
        .collect();
    let taq = sc
        .taq_states
        .iter()
        .map(|s| s.as_ref().map(|s| s.lock().unwrap().stats.clone()))
        .collect();
    Trace {
        events: sc
            .sim
            .monitor::<EventRecorder>(recorder)
            .expect("recorder present")
            .events
            .clone(),
        records: log.records,
        links,
        taq,
        processed: sc.sim.events_processed(),
    }
}

#[test]
fn batched_run_matches_step_loop_on_both_schedulers() {
    let mut rng = SimRng::new(0xBA7C4);
    for case in 0..3u64 {
        let spec = random_spec(&mut rng);
        let seed = 100 + case;
        for scheduler in [SchedulerKind::TimerWheel, SchedulerKind::BinaryHeap] {
            let stepped = run_case(&spec, scheduler, false, seed);
            let batched = run_case(&spec, scheduler, true, seed);
            assert!(
                stepped.processed > 1_000,
                "case {case}: fixture too small to exercise batching ({} events)",
                stepped.processed
            );
            assert_eq!(
                stepped, batched,
                "case {case}: batched run diverged from step loop on {scheduler:?}"
            );
        }
    }
}

#[test]
fn wheel_and_heap_agree_under_batching() {
    let mut rng = SimRng::new(0x5EED5);
    for case in 0..3u64 {
        let spec = random_spec(&mut rng);
        let seed = 200 + case;
        let wheel = run_case(&spec, SchedulerKind::TimerWheel, true, seed);
        let heap = run_case(&spec, SchedulerKind::BinaryHeap, true, seed);
        assert_eq!(
            wheel, heap,
            "case {case}: scheduler backends diverged under batched execution"
        );
    }
}

/// One scripted churn round: enqueue a burst, then drain some packets.
/// `DRAIN[i]` of 0 models a timer tick that only advances the clock.
const BURSTS: usize = 200;

fn key(port: u16) -> FlowKey {
    FlowKey {
        src: NodeId(1),
        src_port: 80,
        dst: NodeId(2),
        dst_port: port,
    }
}

fn data(arena: &mut PacketArena, port: u16, seq: u64, id: u64) -> PacketId {
    let mut p = PacketBuilder::new(key(port)).seq(seq).payload(460).build();
    p.id = id;
    arena.insert(p)
}

/// Drives one TAQ pair with the scripted churn, draining via `drain`,
/// and returns the dequeued packet ids in order plus the final stats.
fn churn_taq(
    drain: impl Fn(&mut taq::TaqQdisc, &mut PacketArena, SimTime, usize) -> Vec<PacketId>,
) -> (Vec<u64>, taq::TaqStats) {
    let mut cfg = TaqConfig::for_link(Bandwidth::from_kbps(600));
    cfg.buffer_pkts = 24;
    cfg.newflow_cap_pkts = 12;
    let pair = TaqPair::new(cfg);
    let mut q = pair.forward;
    let mut arena = PacketArena::new();
    let mut rng = SimRng::new(0xD0_D0);
    let mut next_id = 1u64;
    let mut out = Vec::new();
    for round in 0..BURSTS as u64 {
        let now = SimTime::from_millis(round * 7);
        let burst = 1 + rng.next_below(6);
        for _ in 0..burst {
            let port = 1000 + rng.next_below(8) as u16;
            let pkt = data(&mut arena, port, 1 + next_id * 460, next_id);
            next_id += 1;
            let outcome = q.enqueue(pkt, &mut arena, now);
            for dropped in outcome.dropped {
                arena.remove(dropped);
            }
        }
        let want = rng.next_below(8) as usize;
        for id in drain(&mut q, &mut arena, now, want) {
            out.push(arena.get(id).id);
            arena.remove(id);
        }
    }
    // Final full drain so both scripts see the queue empty.
    let now = SimTime::from_secs(60);
    loop {
        let got = drain(&mut q, &mut arena, now, 16);
        if got.is_empty() {
            break;
        }
        for id in got {
            out.push(arena.get(id).id);
            arena.remove(id);
        }
    }
    assert_eq!(q.len(), 0);
    let stats = pair.state.lock().unwrap().stats.clone();
    (out, stats)
}

#[test]
fn taq_dequeue_batch_matches_repeated_dequeue() {
    let (serial, serial_stats) = churn_taq(|q, arena, now, want| {
        let mut got = Vec::new();
        for _ in 0..want {
            match q.dequeue(arena, now) {
                Some(id) => got.push(id),
                None => break,
            }
        }
        got
    });
    let (batched, batched_stats) = churn_taq(|q, arena, now, want| {
        let mut got = Vec::new();
        q.dequeue_batch(arena, now, &mut got, want);
        got
    });
    assert!(
        serial.len() > 300,
        "churn script too light ({} packets forwarded)",
        serial.len()
    );
    assert_eq!(serial, batched, "dequeue_batch reordered the packet stream");
    assert_eq!(serial_stats, batched_stats, "stats diverged under batching");
}
