//! Admission control under extreme contention (paper §4.3 / Figure 12).
//!
//! Pushes the link past the model's tipping point (loss > p_thresh =
//! 0.1), at which point plain queueing cannot save anyone — the paper's
//! own conclusion. TAQ's admission controller stops admitting *new*
//! flow pools, lets admitted ones finish predictably, and guarantees
//! waiting pools admission within Twait. The example prints completion
//! statistics with the admission wait charged to download time, plus
//! the controller's own counters.
//!
//! Run with: `cargo run --release --example admission_control`

use taq::{TaqConfig, TaqPair};
use taq_metrics::Distribution;
use taq_queues::DropTail;
use taq_sim::{Bandwidth, DumbbellConfig, SimDuration, SimRng, SimTime, UnboundedFifo};
use taq_tcp::TcpConfig;
use taq_workloads::{generate_session, DumbbellScenario, ObjectSizeModel, SessionConfig};

struct Outcome {
    completed: usize,
    total: usize,
    times: Distribution,
    syns_rejected: u64,
}

fn run(admission: bool) -> Outcome {
    let rate = Bandwidth::from_kbps(600);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    let (forward, reverse, state) = if admission {
        let pair = TaqPair::new(TaqConfig::for_link(rate).with_admission_control());
        (
            Box::new(pair.forward) as _,
            Box::new(pair.reverse) as _,
            Some(pair.state),
        )
    } else {
        (
            Box::new(DropTail::with_packets(buffer)) as _,
            Box::new(UnboundedFifo::new()) as _,
            None,
        )
    };
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let mut sc =
        DumbbellScenario::new_with_reverse(42, topo, forward, reverse, TcpConfig::default());

    // 100 users browsing episodically — pages of a few objects
    // separated by think times longer than TAQ's pool window, so each
    // page load is a fresh flow pool the admission controller can pace.
    // Aggregate demand oversubscribes the 600 Kbps link.
    let session_cfg = SessionConfig {
        pages_per_user: 12,
        objects_per_page: (3, 5),
        mean_think_time: SimDuration::from_secs(15),
        sizes: ObjectSizeModel {
            mu: 9.4,
            sigma: 0.7,
            tail_prob: 0.0,
            tail_scale: 1.0,
            tail_alpha: 1.0,
            min_bytes: 5_000,
            max_bytes: 50_000,
        },
    };
    let mut rng = SimRng::new(3);
    for u in 0..100u64 {
        let mut user_rng = rng.split(u);
        let session = generate_session(&session_cfg, u << 20, &mut user_rng);
        let entries: Vec<taq_workloads::weblog::LogEntry> = session
            .requests
            .iter()
            .map(|(t, r)| taq_workloads::weblog::LogEntry {
                at: *t,
                client: u as u32,
                bytes: r.bytes,
                tag: r.tag,
            })
            .collect();
        sc.add_scheduled_client(&entries, 4, SimTime::ZERO);
    }
    let horizon = SimTime::from_secs(330);
    sc.run_until(horizon);

    let records = sc.log.lock().unwrap();
    let times = Distribution::from_samples(
        records
            .records
            .iter()
            .filter_map(|r| r.download_time().map(|d| d.as_secs_f64()))
            .collect(),
    );
    Outcome {
        completed: times.len(),
        total: records.records.len(),
        times,
        syns_rejected: state.map_or(0, |s| s.lock().unwrap().stats.syns_rejected),
    }
}

fn main() {
    println!("100 browsing users (pools of 4) over 600 Kbps — past the tipping point\n");
    for admission in [false, true] {
        let label = if admission {
            "taq + admission control"
        } else {
            "droptail (no admission)"
        };
        let o = run(admission);
        println!("{label}:");
        println!(
            "  completed {}/{} objects; download time median {:.1}s, p90 {:.1}s, max {:.1}s",
            o.completed,
            o.total,
            o.times.median().unwrap_or(f64::NAN),
            o.times.quantile(0.9).unwrap_or(f64::NAN),
            o.times.max().unwrap_or(f64::NAN),
        );
        if admission {
            println!(
                "  admission controller rejected {} SYNs (clients retried until admitted)",
                o.syns_rejected
            );
        }
        println!();
    }
}
