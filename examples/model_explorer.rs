//! Explore the idealized Markov models from the command line.
//!
//! Prints, for a given per-packet loss probability `p`, the stationary
//! distribution over "packets sent per epoch" of both the partial model
//! (Figure 4) and the full repetitive-timeout model (Figure 5), the
//! closed-form expected idle time, and the backoff-depth occupancy.
//!
//! Run with: `cargo run --example model_explorer -- 0.15`

use taq_model::{analysis, FullModel, PartialModel};

fn main() {
    let p: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.15);
    assert!(
        p > 0.0 && p < 0.5,
        "loss probability must be in (0, 0.5); got {p}"
    );
    let wmax = 6;
    let partial = PartialModel::new(p, wmax);
    let full = FullModel::new(p, wmax, 3);

    println!("TCP in a small packet regime at p = {p} (Wmax = {wmax}):\n");
    println!("packets/epoch   partial-model   full-model");
    let pd = partial.n_sent_distribution();
    let fd = full.n_sent_distribution();
    for n in 0..=wmax as usize {
        println!("{n:>13} {:>15.4} {:>12.4}", pd[n], fd[n]);
    }
    println!();
    println!(
        "probability of a timeout state:   partial {:.3}, full {:.3}",
        partial.timeout_mass(),
        full.timeout_mass()
    );
    println!(
        "expected throughput (pkts/epoch): partial {:.3}, full {:.3}",
        partial.expected_segments_per_epoch(),
        full.expected_segments_per_epoch()
    );
    println!(
        "expected idle time in timeout:    {:.3} epochs  (closed form 1/(1-2p))",
        analysis::expected_idle_epochs(p).expect("p < 1/2")
    );
    println!("\nrepetitive-timeout depth (full model):");
    for j in 1..=4 {
        println!(
            "  P(at least {j} backoff{}) = {:.4}",
            if j == 1 { "" } else { "s" },
            full.backoff_mass_at_least(j)
        );
    }
    println!(
        "\nthe tipping point: timeout states claim a majority of epochs at p ≈ {:.3}",
        analysis::majority_timeout_point(wmax, 3)
    );
}
