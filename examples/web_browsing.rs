//! Web browsing on a pathologically shared access link (the paper's
//! motivating scenario, §2.2).
//!
//! Replays a synthetic campus access log — ~220 clients with browser
//! pools of 4 connections behind a 2 Mbps link — through DropTail and
//! through TAQ, and compares download-time percentiles for small and
//! large objects. This is the Figure 1 situation ("download times vary
//! by two orders of magnitude") and the demonstration that TAQ narrows
//! the spread.
//!
//! Run with: `cargo run --release --example web_browsing`

use taq_metrics::Distribution;
use taq_queues::DropTail;
use taq_sim::{Bandwidth, DumbbellConfig, Qdisc, SimDuration, SimRng, SimTime, UnboundedFifo};
use taq_tcp::TcpConfig;
use taq_workloads::{weblog, DumbbellScenario};

fn run(label: &str, forward: Box<dyn Qdisc>, reverse: Box<dyn Qdisc>) {
    let topo = DumbbellConfig::with_rtt_200ms(Bandwidth::from_mbps(2));
    let mut sc =
        DumbbellScenario::new_with_reverse(42, topo, forward, reverse, TcpConfig::default());

    // A 3-minute window of the campus trace (scale 1/40 of two hours).
    let log_cfg = weblog::WebLogConfig::campus_two_hour(40);
    let mut rng = SimRng::new(7);
    let log = weblog::generate(&log_cfg, &mut rng);
    for (_, entries) in weblog::by_client(&log) {
        sc.add_scheduled_client(&entries, 4, SimTime::ZERO);
    }
    let horizon = SimTime::ZERO + log_cfg.duration + SimDuration::from_secs(90);
    sc.run_until(horizon);

    let records = sc.log.lock().unwrap();
    let times = |lo: u64, hi: u64| {
        Distribution::from_samples(
            records
                .records
                .iter()
                .filter(|r| r.bytes >= lo && r.bytes < hi)
                .map(|r| match r.download_time() {
                    Some(d) => d.as_secs_f64(),
                    None => horizon.saturating_since(r.queued_at).as_secs_f64(),
                })
                .collect(),
        )
    };
    let small = times(1_000, 30_000);
    let large = times(100_000, 1_000_000);
    println!("{label}:");
    println!(
        "  <30KB objects  (n={:>4}): median {:>6.1}s   p90 {:>6.1}s   max {:>7.1}s",
        small.len(),
        small.median().unwrap_or(f64::NAN),
        small.quantile(0.9).unwrap_or(f64::NAN),
        small.max().unwrap_or(f64::NAN),
    );
    println!(
        "  ~100KB-1MB     (n={:>4}): median {:>6.1}s   p90 {:>6.1}s   max {:>7.1}s",
        large.len(),
        large.median().unwrap_or(f64::NAN),
        large.quantile(0.9).unwrap_or(f64::NAN),
        large.max().unwrap_or(f64::NAN),
    );
}

fn main() {
    println!("~220 browsing clients behind a 2 Mbps access link:\n");
    let rate = Bandwidth::from_mbps(2);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    run(
        "droptail",
        Box::new(DropTail::with_packets(buffer)),
        Box::new(UnboundedFifo::new()),
    );
    let pair = taq::TaqPair::new(taq::TaqConfig::for_link(rate));
    run("taq", Box::new(pair.forward), Box::new(pair.reverse));
}
