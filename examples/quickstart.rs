//! Quickstart: put TAQ on a congested bottleneck and watch short-term
//! fairness recover.
//!
//! Builds the paper's dumbbell twice — once with DropTail, once with a
//! TAQ middlebox — runs 40 long-lived TCP flows over a 600 Kbps link
//! (fair share ≈ 15 Kbps ≈ 1.5 packets/RTT: a small packet regime), and
//! prints the 20-second-slice Jain fairness index and link utilization
//! for both.
//!
//! Run with: `cargo run --release --example quickstart`

use taq::{TaqConfig, TaqPair};
use taq_metrics::SliceThroughput;
use taq_queues::DropTail;
use taq_sim::{Bandwidth, DumbbellConfig, Qdisc, SimDuration, SimTime};
use taq_tcp::TcpConfig;
use taq_workloads::{DumbbellScenario, BULK_BYTES};

fn run(label: &str, qdisc: Box<dyn Qdisc>) {
    const FLOWS: usize = 40;
    let rate = Bandwidth::from_kbps(600);
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let mut scenario = DumbbellScenario::new(42, topo, qdisc, TcpConfig::default());

    // Observe per-flow throughput in 20-second slices at the bottleneck.
    let slices = scenario.sim.add_monitor(Box::new(SliceThroughput::new(
        scenario.db.bottleneck,
        SimDuration::from_secs(20),
    )));

    scenario.add_bulk_clients(FLOWS, BULK_BYTES, SimDuration::from_secs(2));
    scenario.run_until(SimTime::from_secs(200));

    let stats = scenario.sim.link_stats(scenario.db.bottleneck);
    println!(
        "{label:>9}: short-term Jain = {:.3}, utilization = {:.3}, loss = {:.1}%",
        scenario
            .sim
            .monitor::<SliceThroughput>(slices)
            .expect("slice monitor")
            .mean_jain(2, 10, FLOWS),
        stats.utilization(SimDuration::from_secs(200)),
        100.0 * stats.drop_rate(),
    );
}

fn main() {
    println!("40 TCP flows sharing 600 Kbps (fair share ~1.5 packets/RTT):\n");
    let rate = Bandwidth::from_kbps(600);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    run("droptail", Box::new(DropTail::with_packets(buffer)));
    let pair = TaqPair::new(TaqConfig::for_link(rate));
    run("taq", Box::new(pair.forward));
    println!("\nTAQ restores short-term fairness without sacrificing utilization.");
}
