//! The real-time testbed in action (the paper's §5.4 setting).
//!
//! Runs the same TAQ code that the simulator evaluates — unchanged —
//! inside a multi-threaded wall-clock emulation: a token-paced 600 Kbps
//! bottleneck with eight clients fetching object streams. Unlike the
//! simulator this is nondeterministic (real thread scheduling), which
//! is the point: the discipline keeps working under genuine timing
//! jitter.
//!
//! Runs ~12 s of simulated time at 6x real time (about 2 s wall).
//!
//! Run with: `cargo run --release --example testbed_demo`
//!
//! Set `TELEMETRY_JSONL=/path/to/trace.jsonl` to stream the middlebox's
//! structured telemetry (flow states, classification, drops, link
//! events) to a file — the same event taxonomy an instrumented
//! simulator run emits, so the two traces are directly comparable.

use taq::{TaqConfig, TaqPair};
use taq_metrics::jain_index;
use taq_sim::{Bandwidth, SimDuration, SimTime};
use taq_tcp::TcpConfig;
use taq_testbed::{run_testbed, ClientSpec, RtRequest, TestbedConfig};

fn main() {
    let rate = Bandwidth::from_kbps(600);
    let telemetry_jsonl = std::env::var_os("TELEMETRY_JSONL").map(std::path::PathBuf::from);
    let cfg = TestbedConfig {
        rate,
        one_way_delay: SimDuration::from_millis(100),
        tcp: TcpConfig::default(),
        speedup: 6.0,
        horizon: SimTime::from_secs(12),
        telemetry_jsonl: telemetry_jsonl.clone(),
        trace_dump: None,
        restart: None,
    };
    let clients: Vec<ClientSpec> = (0..8)
        .map(|c| ClientSpec {
            requests: (0..50)
                .map(|i| RtRequest {
                    tag: c * 100 + i,
                    bytes: 15_000,
                })
                .collect(),
            max_parallel: 2,
        })
        .collect();

    println!("8 clients through a real-time TAQ middlebox at 600 Kbps...");
    let report = run_testbed(
        cfg,
        move |telemetry| {
            let pair = TaqPair::new(TaqConfig::for_link(rate));
            pair.state
                .lock()
                .unwrap()
                .attach_telemetry(telemetry.clone());
            (Box::new(pair.forward) as _, Box::new(pair.reverse) as _)
        },
        clients,
    );
    if let Some(path) = &telemetry_jsonl {
        // The middlebox thread owns the sink; it warns on stderr if the
        // file could not be created, so only claim success if it exists.
        if path.exists() {
            println!("telemetry trace written to {}", path.display());
        }
    }

    let mut per_client = std::collections::HashMap::<u64, u64>::new();
    let mut completed = 0;
    for r in &report.records {
        if r.completed_at.is_some() {
            completed += 1;
            *per_client.entry(r.tag / 100).or_default() += r.bytes;
        }
    }
    let goodputs: Vec<f64> = (0..8)
        .map(|c| *per_client.get(&c).unwrap_or(&0) as f64)
        .collect();
    println!("completed {completed} objects; per-client bytes {goodputs:?}");
    println!("goodput-share Jain index: {:.3}", jain_index(&goodputs));
    println!(
        "bottleneck: {} packets forwarded, {} dropped",
        report.stats.fwd_transmitted, report.stats.fwd_dropped
    );
}
