//! The flight recorder riding a testbed crash-restart drill.
//!
//! Eight clients stream objects through a real-time TAQ middlebox; ten
//! simulated seconds in, the middlebox "crashes" — buffered packets
//! discarded, all per-flow TAQ state lost, a 2 s stall. The `restart`
//! fault event trips the flight recorder, which dumps the last few
//! hundred packet lifecycles (plus the sim-time series) to a JSONL
//! post-mortem at the crash instant. The example then re-reads the dump
//! with the same parser `trace_report --input` uses and renders the
//! analysis: what every packet was doing just before the lights went
//! out.
//!
//! Run with: `cargo run --release --example flight_recorder`

use taq::{TaqConfig, TaqPair};
use taq_sim::{Bandwidth, SimDuration, SimTime};
use taq_tcp::TcpConfig;
use taq_testbed::{run_testbed, ClientSpec, RestartDrill, RtRequest, TestbedConfig};
use taq_trace::{ReportConfig, TraceReport};

fn main() {
    let rate = Bandwidth::from_kbps(600);
    let dump =
        std::env::temp_dir().join(format!("taq_flight_recorder_{}.jsonl", std::process::id()));
    let cfg = TestbedConfig {
        rate,
        one_way_delay: SimDuration::from_millis(100),
        tcp: TcpConfig::default(),
        speedup: 10.0,
        horizon: SimTime::from_secs(40),
        telemetry_jsonl: None,
        trace_dump: Some(dump.clone()),
        restart: Some(RestartDrill {
            at: SimTime::from_secs(10),
            stall: SimDuration::from_secs(2),
        }),
    };
    let clients: Vec<ClientSpec> = (0..8)
        .map(|c| ClientSpec {
            requests: (0..40)
                .map(|i| RtRequest {
                    tag: c * 100 + i,
                    bytes: 15_000,
                })
                .collect(),
            max_parallel: 2,
        })
        .collect();

    println!("8 clients through a TAQ middlebox; crash-restart drill at t=10 s...");
    let report = run_testbed(
        cfg,
        move |telemetry| {
            let pair = TaqPair::new(TaqConfig::for_link(rate));
            pair.attach_telemetry(telemetry.clone());
            (Box::new(pair.forward) as _, Box::new(pair.reverse) as _)
        },
        clients,
    );
    println!(
        "run done: {} restarts, {} packets forwarded, {} dropped",
        report.stats.restarts, report.stats.fwd_transmitted, report.stats.fwd_dropped
    );

    let text = std::fs::read_to_string(&dump).expect("post-mortem dump written");
    println!(
        "post-mortem dump: {} ({} lines)\n",
        dump.display(),
        text.lines().count()
    );
    let parsed = TraceReport::parse(&text);
    print!(
        "{}",
        parsed.render(&ReportConfig {
            // The testbed runs at wall-clock pace, so flows naturally
            // pause between objects; only the drill's 2 s stall should
            // read as silence.
            silence_ns: 1_500_000_000,
            window_ns: 2_000_000_000,
            ..ReportConfig::default()
        })
    );
    let _ = std::fs::remove_file(&dump);
}
