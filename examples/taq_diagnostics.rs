//! Diagnostic harness comparing DropTail and TAQ internals on the
//! fairness scenario, reported through the unified telemetry layer: a
//! [`SummarySink`] aggregates every structured event the middlebox and
//! simulator emit (state transitions, classification, staged drops,
//! queue-depth samples, link records) and renders one table per run.
//! Knobs via env vars: `FLOWS`, `RECOV_FRAC`, `TAQ_BUF`, `EVO_WIN_MS`,
//! `MINRTO_MS`.
//!
//! Run with: `cargo run --release --example taq_diagnostics`

use taq::{QueueClass, TaqConfig, TaqPair};
use taq_metrics::{EvolutionTracker, SliceThroughput};
use taq_queues::DropTail;
use taq_sim::{Bandwidth, DumbbellConfig, Qdisc, SimDuration, SimTime, TelemetryBridge};
use taq_tcp::{ServerHost, TcpConfig};
use taq_telemetry::{shared_sink, SummarySink, Telemetry};
use taq_workloads::{DumbbellScenario, BULK_BYTES};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(name: &str, qdisc: Box<dyn Qdisc>, taq_state: Option<taq::SharedTaq>) {
    let rate = Bandwidth::from_kbps(600);
    let topo = DumbbellConfig::with_rtt_200ms(rate);
    let tcp = TcpConfig {
        min_rto: SimDuration::from_millis(env_or("MINRTO_MS", 1000)),
        ..TcpConfig::default()
    };

    let telemetry = Telemetry::new();
    let (summary, erased) = shared_sink(SummarySink::new());
    telemetry.add_shared_sink(erased);
    if let Some(state) = &taq_state {
        state.lock().unwrap().attach_telemetry(telemetry.clone());
    }

    let mut sc = DumbbellScenario::new(42, topo, qdisc, tcp);
    let bridge = TelemetryBridge::new(telemetry.clone()).only(sc.db.bottleneck);
    sc.sim.add_monitor(Box::new(bridge));
    let slices = sc.sim.add_monitor(Box::new(SliceThroughput::new(
        sc.db.bottleneck,
        SimDuration::from_secs(20),
    )));
    let evo = sc.sim.add_monitor(Box::new(EvolutionTracker::new(
        sc.db.bottleneck,
        SimDuration::from_millis(env_or("EVO_WIN_MS", 1000)),
    )));
    let flows = env_or("FLOWS", 60);
    sc.add_bulk_clients(flows, BULK_BYTES, SimDuration::from_secs(2));
    let wall = std::time::Instant::now();
    sc.run_until(SimTime::from_secs(300));
    sc.sim.emit_telemetry_summary(&telemetry, wall.elapsed());
    telemetry.flush();

    let stats = sc.sim.link_stats(sc.db.bottleneck);
    let srv = sc.sim.agent::<ServerHost>(sc.server).unwrap();
    let agg = srv.aggregate_stats();
    let slices = sc
        .sim
        .monitor::<SliceThroughput>(slices)
        .expect("slice monitor");
    let jain = slices.mean_jain(2, 15, flows);
    let series = sc
        .sim
        .monitor::<EvolutionTracker>(evo)
        .expect("evolution monitor")
        .series();
    let (mut stalled, mut total) = (0, 0);
    for c in &series[series.len() / 4..] {
        stalled += c.stalled;
        total += c.total();
    }
    println!("== {name}");
    println!(
        "  jain20={jain:.3} util={:.3} drops={} ({:.1}%) tx={}",
        stats.utilization(SimDuration::from_secs(300)),
        stats.dropped_pkts,
        100.0 * stats.drop_rate(),
        stats.transmitted_pkts
    );
    println!(
        "  srv: timeouts={} fast_rtx={} retx={} sent={} max_backoff={}",
        agg.timeouts, agg.fast_retransmits, agg.retransmits, agg.segments_sent, agg.max_backoff
    );
    println!("  stalled_frac={:.3}", stalled as f64 / total.max(1) as f64);
    if let Some(state) = taq_state {
        let mut st = state.lock().unwrap();
        println!("  taq stats snapshot: {}", st.stats.snapshot().to_json());
        println!(
            "    flows tracked={} fair_share={:.0}bps",
            st.flows.len(),
            st.fair_share(SimTime::from_secs(300))
        );
        let mut states: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for f in st.flows.iter() {
            *states.entry(f.state.name()).or_default() += 1;
        }
        let states: Vec<String> = states.iter().map(|(s, n)| format!("{s}={n}")).collect();
        println!("    final states: {}", states.join(" "));
        for class in QueueClass::ALL {
            println!("    {class}: {} pkts admitted", st.stats.class_count(class));
        }
        let rates: Vec<u64> = st.flows.iter().map(|f| f.rate_bps() as u64).collect();
        println!(
            "    rate est: min={:?} max={:?}",
            rates.iter().min(),
            rates.iter().max()
        );
    }
    println!();
    print!("{}", summary.lock().unwrap().render(name));
}

fn main() {
    let rate = Bandwidth::from_kbps(600);
    let buffer = rate.packets_per(SimDuration::from_millis(200), 500);
    run("droptail", Box::new(DropTail::with_packets(buffer)), None);
    let mut cfg = TaqConfig::for_link(rate);
    if let Ok(v) = std::env::var("RECOV_FRAC") {
        cfg.recovery_cap_fraction = v.parse().unwrap();
    }
    if let Ok(v) = std::env::var("TAQ_BUF") {
        cfg.buffer_pkts = v.parse().unwrap();
    }
    let pair = TaqPair::new(cfg);
    let state = pair.state.clone();
    run("taq", Box::new(pair.forward), Some(state));
}
