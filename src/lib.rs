//! Root integration crate for the TAQ reproduction: see `tests/` and `examples/`.
