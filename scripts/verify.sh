#!/usr/bin/env sh
# The full local gate, offline-safe (no crates.io access needed):
# release build, test suite, clippy as errors, formatting.
set -eux

cd "$(dirname "$0")/.."

cargo build --offline --release
cargo test --offline -q
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
