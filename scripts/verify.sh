#!/usr/bin/env sh
# The local gate, tiered so CI and pre-push hooks can pick their depth.
#
#   VERIFY_TIER=quick   fast correctness gate (< 5 min): build, tests,
#                       clippy, fmt. The default.
#   VERIFY_TIER=full    quick + release smoke runs of the sweep,
#                       fault-matrix, trace, and fluid-validation
#                       binaries, plus the per-metric regression gate
#                       (events/s and the hot-path latency histograms)
#                       against the committed BENCH_sim.json.
#   VERIFY_OFFLINE=0    drop the --offline flags (e.g. on a CI runner
#                       with a warm crates.io mirror). Default is 1:
#                       fully offline, no network access needed.
#
# Each tier is a shell function; CI jobs call them by name via
#   scripts/verify.sh <function>
# so the workflow's job names and the local entry points stay in sync.
set -eu

cd "$(dirname "$0")/.."

VERIFY_TIER="${VERIFY_TIER:-quick}"
VERIFY_OFFLINE="${VERIFY_OFFLINE:-1}"

if [ "$VERIFY_OFFLINE" = "1" ]; then
    OFFLINE="--offline"
else
    OFFLINE=""
fi

run() {
    echo "+ $*" >&2
    "$@"
}

fmt_check() {
    run cargo fmt --check
}

lint() {
    run cargo clippy $OFFLINE --workspace --all-targets -- -D warnings
}

build_release() {
    run cargo build $OFFLINE --release
}

# The whole test suite. `cargo test` already runs every target —
# including tests/send_assertions.rs (the Send-clean guarantee),
# tests/sweep_determinism.rs and tests/fault_invariants.rs (cross-thread
# determinism, with and without faults) — so there is no separate
# per-test invocation.
test_suite() {
    run cargo test $OFFLINE -q
}

# Sweep smoke: 2 seeds x 2 worker threads through the parallel runner.
# topo_placement rides along to exercise the multi-bottleneck topology
# engine (parking lot + access tree) under the same runner.
sweep_smoke() {
    run cargo run $OFFLINE --release -p taq-bench --bin fig03_buffer_tradeoff -- --smoke --seeds 1,2 --threads 2
    run cargo run $OFFLINE --release -p taq-bench --bin model_tipping_point -- --threads 2
    run cargo run $OFFLINE --release -p taq-bench --bin topo_placement -- --smoke --seeds 1,2 --threads 2
}

# Fault smoke: the robustness matrix at smoke scale exercises the
# fault-injection layer end to end (burst loss, reordering, corruption,
# flaps, jitter) under the parallel sweep runner.
fault_smoke() {
    run cargo run $OFFLINE --release -p taq-bench --bin faults_matrix -- --smoke --seeds 1,2 --threads 2
}

# Trace smoke: the packet-lifecycle tracer end to end — runs the
# faulted fig01 demo with the flight recorder attached, writes the span
# dump, and re-analyzes it through the --input path (so both the
# collector and the parser are exercised). CI archives the dump.
trace_smoke() {
    run cargo run $OFFLINE --release -p taq-bench --bin trace_report -- --out results/trace_dump.jsonl
    run cargo run $OFFLINE --release -p taq-bench --bin trace_report -- --input results/trace_dump.jsonl
}

# Shard matrix: the sharded engine's determinism contract at one shard
# count (SHARDS env, default 2) — the randomized conformance suite plus
# a release smoke sweep through --shards, so the CI matrix legs and a
# local `SHARDS=4 scripts/verify.sh shard_matrix` run the same thing.
# Output is pinned byte-identical to the serial engine at any count.
shard_matrix() {
    run cargo test $OFFLINE -q --test shard_conformance
    run cargo run $OFFLINE --release -p taq-bench --bin topo_placement -- --smoke --seeds 1 --threads 2 --shards "${SHARDS:-2}"
}

# Batch conformance: the slot-batch engine drain and the batched qdisc
# dequeues against their one-event-at-a-time references, plus the
# telemetry ring transport's byte-identity contract (hub vs inline
# drain vs collector merge, serial and sharded). Both suites also run
# inside test_suite; this entry point exists so CI legs and bisecting
# developers can run just the batching contract.
batch_conformance() {
    run cargo test $OFFLINE -q --test batch_conformance
    run cargo test $OFFLINE -q --test telemetry_rings
}

# Fluid oracle: the mean-field model's own invariants (mass
# conservation, step-halving stability, DTMC agreement) as the quick
# layer; the full tier reruns the sim-vs-model convergence ladder at
# smoke scale and regenerates results/FLUID_validation.json so CI can
# archive it next to BENCH_sim.json. The committed full-scale artifact
# is separately held to its convergence contract by
# tests/fluid_vs_sim.rs inside test_suite.
fluid() {
    run cargo test $OFFLINE -q -p taq-model --lib fluid
    if [ "$VERIFY_TIER" = "full" ]; then
        run cargo run $OFFLINE --release -p taq-bench --bin fluid_validation -- --smoke --out results/FLUID_validation_smoke.json
    fi
}

# Bench gate: re-measures the hot-path scenarios and fails on a >10%
# per-metric regression against the committed BENCH_sim.json —
# events/s per scenario (the attached-sink fig01 variant included),
# plus the ns_per_enqueue / ns_per_classify / ns_per_dequeue latency
# histograms and the steady-state allocations-per-event ceiling. Runs
# before bench_report so the comparison is against the committed
# baseline, not a freshly regenerated one. The binary's distinct exit
# codes say which kind of metric tripped; the per-metric before/after
# table is in its stdout above.
bench_gate() {
    status=0
    run cargo run $OFFLINE --release -p taq-bench --bin bench_report -- --check --iters 3 || status=$?
    case "$status" in
        0) echo "bench_gate: within 10% of committed BENCH_sim.json" >&2 ;;
        2) echo "bench_gate: FAILED — events/s regressed >10% (see the per-metric table above)" >&2 ;;
        3) echo "bench_gate: FAILED — a hot-path latency metric (ns_per_enqueue, ns_per_classify or ns_per_dequeue) regressed >10% (see the per-metric table above)" >&2 ;;
        4) echo "bench_gate: FAILED — a sinkless scenario allocates in steady state (see the allocs/event column above)" >&2 ;;
        *) echo "bench_gate: bench_report exited $status (not a gate verdict)" >&2 ;;
    esac
    return "$status"
}

# Dependency advisories via cargo-audit. Never a gate: the CI job runs
# it with continue-on-error, and dev boxes without the tool (it needs a
# network install) skip it outright — supply-chain advisories should
# page a human, not block an unrelated PR.
audit() {
    if ! cargo audit --version >/dev/null 2>&1; then
        echo "audit: cargo-audit not installed; skipping" >&2
        return 0
    fi
    run cargo audit
}

# Bench tier: regenerates BENCH_sim.json (fig01 churn + fig08 many-flow
# hot-path numbers, with the tracked pre-overhaul baseline embedded) so
# CI can archive it and reviewers can diff events/sec against the
# committed copy.
bench_report() {
    run cargo run $OFFLINE --release -p taq-bench --bin bench_report -- --iters 3 --out BENCH_sim.json
}

# Coverage: workspace line coverage via cargo-llvm-cov, written to
# coverage/ as an lcov trace plus a human-readable summary. Never a
# gate — CI archives the directory so reviewers can eyeball the trend.
# Skips itself when the tool is missing (it needs a network install),
# so offline dev boxes lose nothing.
coverage() {
    if ! cargo llvm-cov --version >/dev/null 2>&1; then
        echo "coverage: cargo-llvm-cov not installed; skipping" >&2
        return 0
    fi
    mkdir -p coverage
    run cargo llvm-cov $OFFLINE --workspace --lcov --output-path coverage/lcov.info
    run cargo llvm-cov report --summary-only > coverage/summary.txt
    cat coverage/summary.txt
}

quick() {
    fmt_check
    lint
    build_release
    test_suite
}

full() {
    quick
    sweep_smoke
    fault_smoke
    trace_smoke
    SHARDS=2 shard_matrix
    SHARDS=4 shard_matrix
    batch_conformance
    fluid
    bench_gate
    bench_report
}

if [ "$#" -gt 0 ]; then
    # Explicit entry points: scripts/verify.sh lint test_suite ...
    for target in "$@"; do
        "$target"
    done
else
    case "$VERIFY_TIER" in
        quick) quick ;;
        full) full ;;
        *)
            echo "verify.sh: unknown VERIFY_TIER '$VERIFY_TIER' (want quick|full)" >&2
            exit 2
            ;;
    esac
fi
