#!/usr/bin/env sh
# The full local gate, offline-safe (no crates.io access needed):
# release build, test suite, clippy as errors, formatting.
set -eux

cd "$(dirname "$0")/.."

cargo build --offline --release
cargo test --offline -q
# The Send-clean guarantee, enforced at compile time (plus the
# cross-thread determinism check riding in the same suites).
cargo test --offline -q --test send_assertions --test sweep_determinism
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
# Sweep smoke: 2 seeds x 2 worker threads through the parallel runner.
cargo run --offline --release -p taq-bench --bin fig03_buffer_tradeoff -- --smoke --seeds 1,2 --threads 2
cargo run --offline --release -p taq-bench --bin model_tipping_point -- --threads 2
